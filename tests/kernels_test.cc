// Tests for src/tensor/kernels: scalar/AVX2 f32 micro-kernel correctness,
// runtime dispatch control, and the f32-vs-f64 serving parity properties
// (top-k agreement and NDCG delta) the float scoring path is shipped under.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/eval/metrics.h"
#include "src/serve/embedding_store.h"
#include "src/serve/engine.h"
#include "src/serve/query.h"
#include "src/tensor/kernels.h"
#include "src/tensor/matrix.h"
#include "src/util/parallel.h"
#include "src/util/random.h"

namespace smgcn {
namespace tensor {
namespace kernels {
namespace {

/// RAII scalar-kernel override so a failing assertion can't leave the
/// process pinned to the wrong backend for later tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) : previous_(ScalarForced()) {
    ForceScalar(force);
  }
  ~ScopedForceScalar() { ForceScalar(previous_); }

 private:
  bool previous_;
};

std::vector<float> RandomVec(std::size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->Normal(0.0, 1.0));
  return v;
}

/// Double-accumulated reference for one output element: the ground truth
/// every f32 kernel is checked against (within float tolerance).
double RefDot(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += static_cast<double>(a[k]) * static_cast<double>(b[k]);
  }
  return acc;
}

void ExpectGemmMatchesReference(const Backend& backend, std::size_t b,
                                std::size_t d, std::size_t h, Rng* rng) {
  const std::vector<float> a = RandomVec(b * d, rng);
  const std::vector<float> bt = RandomVec(d * h, rng);
  std::vector<float> out(b * h, -1.0f);
  backend.gemm_f32(a.data(), bt.data(), b, d, h, out.data());
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      std::vector<float> col(d);
      for (std::size_t k = 0; k < d; ++k) col[k] = bt[k * h + j];
      const double ref = RefDot(a.data() + i * d, col.data(), d);
      const double tol = 1e-5 * (1.0 + std::abs(ref)) * std::sqrt(double(d));
      EXPECT_NEAR(out[i * h + j], ref, tol)
          << backend.name << " b=" << b << " d=" << d << " h=" << h << " ("
          << i << "," << j << ")";
    }
  }
}

TEST(KernelsTest, ScalarDotMatchesReference) {
  Rng rng(11);
  for (std::size_t n : {1u, 7u, 8u, 9u, 64u, 257u}) {
    const std::vector<float> a = RandomVec(n, &rng);
    const std::vector<float> b = RandomVec(n, &rng);
    const double ref = RefDot(a.data(), b.data(), n);
    EXPECT_NEAR(ScalarBackend().dot_f32(a.data(), b.data(), n), ref,
                1e-5 * (1.0 + std::abs(ref)))
        << "n=" << n;
  }
}

TEST(KernelsTest, ScalarGemvBitMatchesPerColumnScalarLoop) {
  // The scalar GEMV streams bt row by row but still accumulates each
  // out[j] in ascending-k order — bit-identical to the naive column loop.
  Rng rng(12);
  const std::size_t d = 16, h = 41;
  const std::vector<float> x = RandomVec(d, &rng);
  const std::vector<float> bt = RandomVec(d * h, &rng);
  std::vector<float> out(h);
  ScalarBackend().gemv_f32(x.data(), bt.data(), d, h, out.data());
  for (std::size_t j = 0; j < h; ++j) {
    float acc = 0.0f;
    for (std::size_t k = 0; k < d; ++k) acc += x[k] * bt[k * h + j];
    EXPECT_EQ(out[j], acc) << "j=" << j;
  }
}

TEST(KernelsTest, GemmMatchesReferenceOnRaggedShapes) {
  // Cover every tile/tail combination of both backends: query block (4) and
  // herb tiles (32/16/8) plus their scalar remainders.
  Rng rng(13);
  std::vector<const Backend*> backends = {&ScalarBackend()};
  if (SimdAvailable()) backends.push_back(Avx2Backend());
  for (const Backend* backend : backends) {
    for (std::size_t b : {1u, 3u, 4u, 5u, 9u}) {
      for (std::size_t d : {1u, 8u, 33u}) {
        for (std::size_t h : {1u, 7u, 16u, 31u, 40u, 100u}) {
          ExpectGemmMatchesReference(*backend, b, d, h, &rng);
        }
      }
    }
  }
}

TEST(KernelsTest, GemmRowsBitIdenticalToGemv) {
  // The row-independence contract: every row of a batched GEMM equals the
  // single-query GEMV bit for bit, within one backend. This is what lets
  // the engine mix batched and per-query paths freely.
  Rng rng(14);
  std::vector<const Backend*> backends = {&ScalarBackend()};
  if (SimdAvailable()) backends.push_back(Avx2Backend());
  for (const Backend* backend : backends) {
    for (std::size_t b : {1u, 4u, 6u}) {
      for (std::size_t d : {8u, 24u}) {
        for (std::size_t h : {8u, 40u, 44u, 753u}) {
          const std::vector<float> a = RandomVec(b * d, &rng);
          const std::vector<float> bt = RandomVec(d * h, &rng);
          std::vector<float> batched(b * h);
          backend->gemm_f32(a.data(), bt.data(), b, d, h, batched.data());
          std::vector<float> single(h);
          for (std::size_t i = 0; i < b; ++i) {
            backend->gemv_f32(a.data() + i * d, bt.data(), d, h, single.data());
            for (std::size_t j = 0; j < h; ++j) {
              EXPECT_EQ(batched[i * h + j], single[j])
                  << backend->name << " row " << i << " j=" << j << " b=" << b
                  << " d=" << d << " h=" << h;
            }
          }
        }
      }
    }
  }
}

TEST(KernelsTest, ForceScalarOverridesDispatch) {
  {
    ScopedForceScalar force(true);
    EXPECT_STREQ(ActiveName(), "scalar");
    EXPECT_TRUE(ScalarForced());
  }
  // Outside the override, the active backend is whatever dispatch picked.
  if (SimdAvailable() && !ScalarForced()) {
    EXPECT_STREQ(ActiveName(), "avx2");
  } else {
    EXPECT_STREQ(ActiveName(), "scalar");
  }
}

TEST(KernelsTest, BackendsAgreeWithinFloatTolerance) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD backend in this build";
  Rng rng(15);
  const std::size_t d = 64, h = 753;
  const std::vector<float> x = RandomVec(d, &rng);
  const std::vector<float> bt = RandomVec(d * h, &rng);
  std::vector<float> scalar(h), simd(h);
  ScalarBackend().gemv_f32(x.data(), bt.data(), d, h, scalar.data());
  Avx2Backend()->gemv_f32(x.data(), bt.data(), d, h, simd.data());
  for (std::size_t j = 0; j < h; ++j) {
    EXPECT_NEAR(scalar[j], simd[j], 1e-4f * (1.0f + std::abs(scalar[j])))
        << "j=" << j;
  }
}

// --------------------------------------------------------------------------
// f32 vs f64 serving parity: the acceptance properties the float path
// ships under. Swept over embedding dims and herb-catalog sizes, at 1 and
// 4 kernel threads, under both the dispatched and the forced-scalar f32
// backend:
//   * top-20 agreement >= 0.999 across all queries, and
//   * |NDCG@20 delta| <= 1e-4 per query
// against the bit-exact f64 reference ranking.
// --------------------------------------------------------------------------

core::InferenceCheckpoint ParityCheckpoint(std::size_t num_symptoms,
                                           std::size_t num_herbs,
                                           std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  core::InferenceCheckpoint ckpt;
  ckpt.model_name = "parity";
  ckpt.symptom_embeddings =
      tensor::Matrix::RandomNormal(num_symptoms, dim, 0.0, 1.0, &rng);
  ckpt.herb_embeddings =
      tensor::Matrix::RandomNormal(num_herbs, dim, 0.0, 1.0, &rng);
  ckpt.has_si_mlp = true;
  ckpt.si_weight = tensor::Matrix::RandomNormal(dim, dim, 0.0, 0.5, &rng);
  ckpt.si_bias = tensor::Matrix::RandomNormal(1, dim, 0.0, 0.5, &rng);
  return ckpt;
}

std::vector<std::vector<int>> ParityQueries(std::size_t count,
                                            std::size_t num_symptoms,
                                            Rng* rng) {
  std::vector<std::vector<int>> queries(count);
  for (auto& q : queries) {
    const std::size_t size = static_cast<std::size_t>(rng->UniformInt(1, 5));
    std::set<int> ids;
    while (ids.size() < size) {
      ids.insert(static_cast<int>(
          rng->UniformInt(0, static_cast<std::int64_t>(num_symptoms) - 1)));
    }
    q.assign(ids.begin(), ids.end());
  }
  return queries;
}

void RunParitySweep(bool force_scalar) {
  constexpr std::size_t kTopK = 20;
  constexpr std::size_t kQueries = 64;
  ScopedForceScalar force(force_scalar);
  struct Shape {
    std::size_t dim, herbs;
  };
  // Paper-scale (d=64, H=753 for TCM) plus small/ragged shapes that stress
  // the kernel tails.
  const Shape shapes[] = {{8, 40}, {16, 257}, {64, 753}, {33, 100}};
  const std::size_t original_threads = parallel::GetNumThreads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::SetNumThreads(threads);
    for (const Shape& shape : shapes) {
      const std::size_t num_symptoms = 48;
      core::InferenceCheckpoint ckpt =
          ParityCheckpoint(num_symptoms, shape.herbs, shape.dim, 907);
      auto f64_store = serve::EmbeddingStore::Build(ckpt);
      auto f32_store =
          serve::EmbeddingStore::Build(ckpt, Precision::kFloat32);
      ASSERT_TRUE(f64_store.ok());
      ASSERT_TRUE(f32_store.ok());

      Rng rng(shape.dim * 1000 + shape.herbs);
      std::size_t agree = 0, total = 0;
      for (const auto& raw : ParityQueries(kQueries, num_symptoms, &rng)) {
        const serve::CanonicalQuery q =
            *serve::Canonicalize(raw, num_symptoms);
        const std::size_t k = std::min(kTopK, f64_store->num_herbs());
        const std::vector<std::size_t> ref =
            eval::TopK(f64_store->ScoreOne(q), k);
        const std::vector<std::size_t> got =
            eval::TopK(f32_store->ScoreOne(q), k);
        ASSERT_EQ(got.size(), ref.size());
        const std::set<std::size_t> got_set(got.begin(), got.end());
        for (std::size_t id : ref) agree += got_set.count(id);
        total += ref.size();

        // NDCG@20 of each ranking against the f64 top-k as the relevant
        // set: the reference scores 1.0 by construction, so the delta is
        // how much ranking quality the narrowing cost.
        std::vector<int> relevant(ref.begin(), ref.end());
        const double ndcg_ref = eval::NdcgAtK(ref, relevant, k);
        const double ndcg_f32 = eval::NdcgAtK(got, relevant, k);
        EXPECT_NEAR(ndcg_ref, 1.0, 1e-12);
        EXPECT_LE(std::abs(ndcg_ref - ndcg_f32), 1e-4)
            << "d=" << shape.dim << " H=" << shape.herbs
            << " threads=" << threads << " scalar=" << force_scalar;
      }
      const double agreement =
          static_cast<double>(agree) / static_cast<double>(total);
      EXPECT_GE(agreement, 0.999)
          << "d=" << shape.dim << " H=" << shape.herbs
          << " threads=" << threads << " scalar=" << force_scalar;
    }
  }
  parallel::SetNumThreads(original_threads);
}

TEST(PrecisionParityTest, DispatchedKernels) { RunParitySweep(false); }

TEST(PrecisionParityTest, ForcedScalarKernels) { RunParitySweep(true); }

TEST(PrecisionParityTest, EngineEndToEndTopKAgreement) {
  // Same property through the full serving engine (canonicalize → cache →
  // parallel GEMM → top-k), 1 and 4 threads.
  constexpr std::size_t kTopK = 20;
  const std::size_t original_threads = parallel::GetNumThreads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::SetNumThreads(threads);
    core::InferenceCheckpoint ckpt = ParityCheckpoint(48, 257, 16, 907);
    serve::ServingEngineOptions options;
    options.cache_capacity = 0;  // every request exercises the GEMM
    auto f64_engine = serve::ServingEngine::Create(ckpt, options);
    options.precision = Precision::kFloat32;
    auto f32_engine = serve::ServingEngine::Create(ckpt, options);
    ASSERT_TRUE(f64_engine.ok());
    ASSERT_TRUE(f32_engine.ok());

    Rng rng(31);
    const auto queries = ParityQueries(64, 48, &rng);
    auto ref = (*f64_engine)->RecommendBatch(queries, kTopK);
    auto got = (*f32_engine)->RecommendBatch(queries, kTopK);
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE(got.ok());
    std::size_t agree = 0, total = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::set<std::size_t> got_set((*got)[i].begin(), (*got)[i].end());
      for (std::size_t id : (*ref)[i]) agree += got_set.count(id);
      total += (*ref)[i].size();
    }
    EXPECT_GE(static_cast<double>(agree) / static_cast<double>(total), 0.999)
        << "threads=" << threads;
  }
  parallel::SetNumThreads(original_threads);
}

}  // namespace
}  // namespace kernels
}  // namespace tensor
}  // namespace smgcn
