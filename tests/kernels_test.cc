// Tests for src/tensor/kernels: scalar/AVX2 f32 and int8 micro-kernel
// correctness, runtime dispatch control (including the audit log line),
// and the reduced-precision-vs-f64 serving parity properties (top-k
// agreement and NDCG delta) the f32 and int8 scoring paths ship under.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/eval/metrics.h"
#include "src/serve/embedding_store.h"
#include "src/serve/engine.h"
#include "src/serve/query.h"
#include "src/tensor/kernels.h"
#include "src/tensor/matrix.h"
#include "src/tensor/quantize.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/random.h"

namespace smgcn {
namespace tensor {
namespace kernels {
namespace {

/// RAII scalar-kernel override so a failing assertion can't leave the
/// process pinned to the wrong backend for later tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) : previous_(ScalarForced()) {
    ForceScalar(force);
  }
  ~ScopedForceScalar() { ForceScalar(previous_); }

 private:
  bool previous_;
};

std::vector<float> RandomVec(std::size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->Normal(0.0, 1.0));
  return v;
}

/// Double-accumulated reference for one output element: the ground truth
/// every f32 kernel is checked against (within float tolerance).
double RefDot(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += static_cast<double>(a[k]) * static_cast<double>(b[k]);
  }
  return acc;
}

void ExpectGemmMatchesReference(const Backend& backend, std::size_t b,
                                std::size_t d, std::size_t h, Rng* rng) {
  const std::vector<float> a = RandomVec(b * d, rng);
  const std::vector<float> bt = RandomVec(d * h, rng);
  std::vector<float> out(b * h, -1.0f);
  backend.gemm_f32(a.data(), bt.data(), b, d, h, out.data());
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      std::vector<float> col(d);
      for (std::size_t k = 0; k < d; ++k) col[k] = bt[k * h + j];
      const double ref = RefDot(a.data() + i * d, col.data(), d);
      const double tol = 1e-5 * (1.0 + std::abs(ref)) * std::sqrt(double(d));
      EXPECT_NEAR(out[i * h + j], ref, tol)
          << backend.name << " b=" << b << " d=" << d << " h=" << h << " ("
          << i << "," << j << ")";
    }
  }
}

TEST(KernelsTest, ScalarDotMatchesReference) {
  Rng rng(11);
  for (std::size_t n : {1u, 7u, 8u, 9u, 64u, 257u}) {
    const std::vector<float> a = RandomVec(n, &rng);
    const std::vector<float> b = RandomVec(n, &rng);
    const double ref = RefDot(a.data(), b.data(), n);
    EXPECT_NEAR(ScalarBackend().dot_f32(a.data(), b.data(), n), ref,
                1e-5 * (1.0 + std::abs(ref)))
        << "n=" << n;
  }
}

TEST(KernelsTest, ScalarGemvBitMatchesPerColumnScalarLoop) {
  // The scalar GEMV streams bt row by row but still accumulates each
  // out[j] in ascending-k order — bit-identical to the naive column loop.
  Rng rng(12);
  const std::size_t d = 16, h = 41;
  const std::vector<float> x = RandomVec(d, &rng);
  const std::vector<float> bt = RandomVec(d * h, &rng);
  std::vector<float> out(h);
  ScalarBackend().gemv_f32(x.data(), bt.data(), d, h, out.data());
  for (std::size_t j = 0; j < h; ++j) {
    float acc = 0.0f;
    for (std::size_t k = 0; k < d; ++k) acc += x[k] * bt[k * h + j];
    EXPECT_EQ(out[j], acc) << "j=" << j;
  }
}

TEST(KernelsTest, GemmMatchesReferenceOnRaggedShapes) {
  // Cover every tile/tail combination of both backends: query block (4) and
  // herb tiles (32/16/8) plus their scalar remainders.
  Rng rng(13);
  std::vector<const Backend*> backends = {&ScalarBackend()};
  if (SimdAvailable()) backends.push_back(Avx2Backend());
  for (const Backend* backend : backends) {
    for (std::size_t b : {1u, 3u, 4u, 5u, 9u}) {
      for (std::size_t d : {1u, 8u, 33u}) {
        for (std::size_t h : {1u, 7u, 16u, 31u, 40u, 100u}) {
          ExpectGemmMatchesReference(*backend, b, d, h, &rng);
        }
      }
    }
  }
}

TEST(KernelsTest, GemmRowsBitIdenticalToGemv) {
  // The row-independence contract: every row of a batched GEMM equals the
  // single-query GEMV bit for bit, within one backend. This is what lets
  // the engine mix batched and per-query paths freely.
  Rng rng(14);
  std::vector<const Backend*> backends = {&ScalarBackend()};
  if (SimdAvailable()) backends.push_back(Avx2Backend());
  for (const Backend* backend : backends) {
    for (std::size_t b : {1u, 4u, 6u}) {
      for (std::size_t d : {8u, 24u}) {
        for (std::size_t h : {8u, 40u, 44u, 753u}) {
          const std::vector<float> a = RandomVec(b * d, &rng);
          const std::vector<float> bt = RandomVec(d * h, &rng);
          std::vector<float> batched(b * h);
          backend->gemm_f32(a.data(), bt.data(), b, d, h, batched.data());
          std::vector<float> single(h);
          for (std::size_t i = 0; i < b; ++i) {
            backend->gemv_f32(a.data() + i * d, bt.data(), d, h, single.data());
            for (std::size_t j = 0; j < h; ++j) {
              EXPECT_EQ(batched[i * h + j], single[j])
                  << backend->name << " row " << i << " j=" << j << " b=" << b
                  << " d=" << d << " h=" << h;
            }
          }
        }
      }
    }
  }
}

std::vector<std::int8_t> RandomS8(std::size_t n, Rng* rng) {
  std::vector<std::int8_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::int8_t>(rng->UniformInt(-127, 127));
  }
  return v;
}

std::vector<float> RandomScales(std::size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& s : v) s = static_cast<float>(rng->Uniform(0.001, 0.05));
  return v;
}

/// i64-accumulated reference: overflow-proof ground truth the exact i32
/// kernels must match bit for bit.
std::int64_t RefDotS8(const std::int8_t* a, const std::int8_t* b,
                      std::size_t n) {
  std::int64_t acc = 0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += static_cast<std::int64_t>(a[k]) * static_cast<std::int64_t>(b[k]);
  }
  return acc;
}

TEST(KernelsInt8Test, DotMatchesWideReferenceExactly) {
  Rng rng(21);
  std::vector<const Backend*> backends = {&ScalarBackend()};
  if (SimdAvailable()) backends.push_back(Avx2Backend());
  for (const Backend* backend : backends) {
    for (std::size_t n : {1u, 7u, 16u, 17u, 64u, 257u}) {
      const std::vector<std::int8_t> a = RandomS8(n, &rng);
      const std::vector<std::int8_t> b = RandomS8(n, &rng);
      EXPECT_EQ(static_cast<std::int64_t>(backend->dot_s8(a.data(), b.data(), n)),
                RefDotS8(a.data(), b.data(), n))
          << backend->name << " n=" << n;
    }
  }
}

TEST(KernelsInt8Test, GemvBitMatchesReferenceOnRaggedShapes) {
  // The int8 contract is stronger than f32's: exact i32 accumulation plus a
  // fixed scale order means EVERY backend must reproduce the reference
  // float bit for bit, tails and tiles alike.
  Rng rng(22);
  std::vector<const Backend*> backends = {&ScalarBackend()};
  if (SimdAvailable()) backends.push_back(Avx2Backend());
  for (const Backend* backend : backends) {
    for (std::size_t d : {1u, 2u, 7u, 8u, 33u, 64u}) {
      for (std::size_t h : {1u, 7u, 15u, 16u, 31u, 40u, 100u}) {
        const std::vector<std::int8_t> x = RandomS8(d, &rng);
        const std::vector<std::int8_t> bt = RandomS8(d * h, &rng);
        const float x_scale = static_cast<float>(rng.Uniform(0.001, 0.05));
        const std::vector<float> col_scales = RandomScales(h, &rng);
        std::vector<float> out(h, -1.0f);
        backend->gemv_s8(x.data(), bt.data(), d, h, x_scale, col_scales.data(),
                         out.data());
        for (std::size_t j = 0; j < h; ++j) {
          std::int32_t acc = 0;
          for (std::size_t k = 0; k < d; ++k) {
            acc += static_cast<std::int32_t>(x[k]) *
                   static_cast<std::int32_t>(bt[k * h + j]);
          }
          const float expected =
              (static_cast<float>(acc) * x_scale) * col_scales[j];
          EXPECT_EQ(out[j], expected)
              << backend->name << " d=" << d << " h=" << h << " j=" << j;
        }
      }
    }
  }
}

TEST(KernelsInt8Test, GemmRowsBitIdenticalToGemvAndAcrossBackends) {
  // Within one backend every batched row must equal the single-query GEMV
  // bit for bit — and, unlike f32, the scalar and AVX2 backends must also
  // agree exactly with each other (integer accumulation has no rounding to
  // diverge on).
  Rng rng(23);
  for (std::size_t b : {1u, 3u, 4u, 5u, 9u}) {
    for (std::size_t d : {1u, 8u, 33u}) {
      for (std::size_t h : {1u, 16u, 44u, 100u, 753u}) {
        const std::vector<std::int8_t> a = RandomS8(b * d, &rng);
        const std::vector<std::int8_t> bt = RandomS8(d * h, &rng);
        const std::vector<float> a_scales = RandomScales(b, &rng);
        const std::vector<float> col_scales = RandomScales(h, &rng);
        std::vector<const Backend*> backends = {&ScalarBackend()};
        if (SimdAvailable()) backends.push_back(Avx2Backend());
        std::vector<std::vector<float>> per_backend;
        for (const Backend* backend : backends) {
          std::vector<float> batched(b * h, -1.0f);
          backend->gemm_s8(a.data(), bt.data(), b, d, h, a_scales.data(),
                           col_scales.data(), batched.data());
          std::vector<float> single(h);
          for (std::size_t i = 0; i < b; ++i) {
            backend->gemv_s8(a.data() + i * d, bt.data(), d, h, a_scales[i],
                             col_scales.data(), single.data());
            for (std::size_t j = 0; j < h; ++j) {
              ASSERT_EQ(batched[i * h + j], single[j])
                  << backend->name << " row " << i << " j=" << j << " b=" << b
                  << " d=" << d << " h=" << h;
            }
          }
          per_backend.push_back(std::move(batched));
        }
        if (per_backend.size() == 2) {
          for (std::size_t e = 0; e < per_backend[0].size(); ++e) {
            ASSERT_EQ(per_backend[0][e], per_backend[1][e])
                << "scalar vs avx2 diverged at flat index " << e << " b=" << b
                << " d=" << d << " h=" << h;
          }
        }
      }
    }
  }
}

TEST(KernelsInt8Test, PrepackedGemmBitIdenticalToUnpacked) {
  // gemm_s8_packed over a gemm_s8_pack'd bt must reproduce gemm_s8 bit for
  // bit on every backend — including shapes where the pack is empty (the
  // backend reports pack_size 0) and the explicit nullptr fallback, which
  // a store built under one backend but scored under another exercises.
  Rng rng(29);
  for (std::size_t b : {1u, 5u, 8u, 17u}) {
    for (std::size_t d : {1u, 8u, 33u}) {
      for (std::size_t h : {1u, 15u, 16u, 100u, 753u}) {
        const std::vector<std::int8_t> a = RandomS8(b * d, &rng);
        const std::vector<std::int8_t> bt = RandomS8(d * h, &rng);
        const std::vector<float> a_scales = RandomScales(b, &rng);
        const std::vector<float> col_scales = RandomScales(h, &rng);
        std::vector<const Backend*> backends = {&ScalarBackend()};
        if (SimdAvailable()) backends.push_back(Avx2Backend());
        for (const Backend* backend : backends) {
          std::vector<float> expected(b * h, -1.0f);
          backend->gemm_s8(a.data(), bt.data(), b, d, h, a_scales.data(),
                           col_scales.data(), expected.data());
          std::vector<std::int32_t> packed(
              backend->gemm_s8_pack_size(d, h));
          if (!packed.empty()) {
            backend->gemm_s8_pack(bt.data(), d, h, packed.data());
          }
          std::vector<float> via_pack(b * h, -2.0f);
          backend->gemm_s8_packed(
              a.data(), bt.data(), packed.empty() ? nullptr : packed.data(),
              b, d, h, a_scales.data(), col_scales.data(), via_pack.data());
          std::vector<float> via_null(b * h, -3.0f);
          backend->gemm_s8_packed(a.data(), bt.data(), nullptr, b, d, h,
                                  a_scales.data(), col_scales.data(),
                                  via_null.data());
          for (std::size_t e = 0; e < expected.size(); ++e) {
            ASSERT_EQ(expected[e], via_pack[e])
                << backend->name << " packed diverged at " << e << " b=" << b
                << " d=" << d << " h=" << h;
            ASSERT_EQ(expected[e], via_null[e])
                << backend->name << " null-pack diverged at " << e
                << " b=" << b << " d=" << d << " h=" << h;
          }
        }
      }
    }
  }
}

TEST(KernelsInt8Test, QuantizeRoundTripIsExact) {
  // Dequantize → requantize must reproduce the same (values, scales) bit
  // for bit — the property that makes int8 artifacts round-trippable
  // through InferenceCheckpoint without drift.
  Rng rng(24);
  const tensor::Matrix m = tensor::Matrix::RandomNormal(13, 29, 0.0, 1.0, &rng);
  const quantize::QuantizedMatrix q = quantize::QuantizeRows(m);
  const tensor::Matrix deq = quantize::DequantizeToMatrix(
      q.values.data(), q.scales.data(), q.rows, q.cols);
  const quantize::QuantizedMatrix q2 = quantize::QuantizeRows(deq);
  ASSERT_EQ(q2.values.size(), q.values.size());
  for (std::size_t i = 0; i < q.values.size(); ++i) {
    ASSERT_EQ(q2.values[i], q.values[i]) << "value " << i;
  }
  for (std::size_t r = 0; r < q.rows; ++r) {
    ASSERT_EQ(q2.scales[r], q.scales[r]) << "scale " << r;
  }
  // Every row's absmax must hit the full quantized range (symmetric scheme).
  for (std::size_t r = 0; r < q.rows; ++r) {
    std::int8_t absmax = 0;
    for (std::size_t c = 0; c < q.cols; ++c) {
      const std::int8_t v = q.values[r * q.cols + c];
      const std::int8_t a = v < 0 ? static_cast<std::int8_t>(-v) : v;
      if (a > absmax) absmax = a;
    }
    EXPECT_EQ(absmax, 127) << "row " << r;
  }
}

TEST(KernelsTest, ForceScalarOverridesDispatch) {
  {
    ScopedForceScalar force(true);
    EXPECT_STREQ(ActiveName(), "scalar");
    EXPECT_TRUE(ScalarForced());
  }
  // Outside the override, the active backend is whatever dispatch picked.
  if (SimdAvailable() && !ScalarForced()) {
    EXPECT_STREQ(ActiveName(), "avx2");
  } else {
    EXPECT_STREQ(ActiveName(), "scalar");
  }
}

TEST(KernelsTest, BackendSelectionLoggedExactlyOncePerResolution) {
  // The "kernel backend selected" INFO line is the audit trail for which
  // code path served traffic: exactly one line per effective resolution —
  // never one per Active() call — in both dispatched and forced-scalar
  // modes.
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) {
    if (line.find("kernel backend selected") != std::string::npos) {
      lines.push_back(line);
    }
  });
  const bool original_forced = ScalarForced();

  // Settle into forced-scalar and flush any pending selection log.
  ForceScalar(true);
  Active();
  lines.clear();

  // Repeated Active() calls in a settled mode must not log again.
  for (int i = 0; i < 5; ++i) Active();
  EXPECT_EQ(lines.size(), 0u);

  if (SimdAvailable()) {
    // Dispatched mode: exactly one line naming the SIMD backend.
    ForceScalar(false);
    for (int i = 0; i < 5; ++i) Active();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("avx2"), std::string::npos) << lines[0];
    EXPECT_NE(lines[0].find("cpuid dispatch"), std::string::npos) << lines[0];

    // Forced-scalar mode: exactly one more line naming the fallback.
    ForceScalar(true);
    for (int i = 0; i < 5; ++i) Active();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[1].find("scalar"), std::string::npos) << lines[1];
    EXPECT_NE(lines[1].find("scalar forced"), std::string::npos) << lines[1];
  } else {
    // Without SIMD both modes resolve to the same backend; flipping the
    // force flag must not produce a duplicate line.
    ForceScalar(false);
    for (int i = 0; i < 5; ++i) Active();
    EXPECT_EQ(lines.size(), 0u);
  }

  ForceScalar(original_forced);
  Active();  // settle (and possibly log) the restored mode before unhooking
  SetLogSink(nullptr);
}

TEST(KernelsTest, BackendsAgreeWithinFloatTolerance) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD backend in this build";
  Rng rng(15);
  const std::size_t d = 64, h = 753;
  const std::vector<float> x = RandomVec(d, &rng);
  const std::vector<float> bt = RandomVec(d * h, &rng);
  std::vector<float> scalar(h), simd(h);
  ScalarBackend().gemv_f32(x.data(), bt.data(), d, h, scalar.data());
  Avx2Backend()->gemv_f32(x.data(), bt.data(), d, h, simd.data());
  for (std::size_t j = 0; j < h; ++j) {
    EXPECT_NEAR(scalar[j], simd[j], 1e-4f * (1.0f + std::abs(scalar[j])))
        << "j=" << j;
  }
}

// --------------------------------------------------------------------------
// f32 vs f64 serving parity: the acceptance properties the float path
// ships under. Swept over embedding dims and herb-catalog sizes, at 1 and
// 4 kernel threads, under both the dispatched and the forced-scalar f32
// backend:
//   * top-20 agreement >= 0.999 across all queries, and
//   * |NDCG@20 delta| <= 1e-4 per query
// against the bit-exact f64 reference ranking.
// --------------------------------------------------------------------------

core::InferenceCheckpoint ParityCheckpoint(std::size_t num_symptoms,
                                           std::size_t num_herbs,
                                           std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  core::InferenceCheckpoint ckpt;
  ckpt.model_name = "parity";
  ckpt.symptom_embeddings =
      tensor::Matrix::RandomNormal(num_symptoms, dim, 0.0, 1.0, &rng);
  ckpt.herb_embeddings =
      tensor::Matrix::RandomNormal(num_herbs, dim, 0.0, 1.0, &rng);
  ckpt.has_si_mlp = true;
  ckpt.si_weight = tensor::Matrix::RandomNormal(dim, dim, 0.0, 0.5, &rng);
  ckpt.si_bias = tensor::Matrix::RandomNormal(1, dim, 0.0, 0.5, &rng);
  return ckpt;
}

std::vector<std::vector<int>> ParityQueries(std::size_t count,
                                            std::size_t num_symptoms,
                                            Rng* rng) {
  std::vector<std::vector<int>> queries(count);
  for (auto& q : queries) {
    const std::size_t size = static_cast<std::size_t>(rng->UniformInt(1, 5));
    std::set<int> ids;
    while (ids.size() < size) {
      ids.insert(static_cast<int>(
          rng->UniformInt(0, static_cast<std::int64_t>(num_symptoms) - 1)));
    }
    q.assign(ids.begin(), ids.end());
  }
  return queries;
}

void RunParitySweep(bool force_scalar) {
  constexpr std::size_t kTopK = 20;
  constexpr std::size_t kQueries = 64;
  ScopedForceScalar force(force_scalar);
  struct Shape {
    std::size_t dim, herbs;
  };
  // Paper-scale (d=64, H=753 for TCM) plus small/ragged shapes that stress
  // the kernel tails.
  const Shape shapes[] = {{8, 40}, {16, 257}, {64, 753}, {33, 100}};
  const std::size_t original_threads = parallel::GetNumThreads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::SetNumThreads(threads);
    for (const Shape& shape : shapes) {
      const std::size_t num_symptoms = 48;
      core::InferenceCheckpoint ckpt =
          ParityCheckpoint(num_symptoms, shape.herbs, shape.dim, 907);
      auto f64_store = serve::EmbeddingStore::Build(ckpt);
      auto f32_store =
          serve::EmbeddingStore::Build(ckpt, Precision::kFloat32);
      ASSERT_TRUE(f64_store.ok());
      ASSERT_TRUE(f32_store.ok());

      Rng rng(shape.dim * 1000 + shape.herbs);
      std::size_t agree = 0, total = 0;
      for (const auto& raw : ParityQueries(kQueries, num_symptoms, &rng)) {
        const serve::CanonicalQuery q =
            *serve::Canonicalize(raw, num_symptoms);
        const std::size_t k = std::min(kTopK, f64_store->num_herbs());
        const std::vector<std::size_t> ref =
            eval::TopK(f64_store->ScoreOne(q), k);
        const std::vector<std::size_t> got =
            eval::TopK(f32_store->ScoreOne(q), k);
        ASSERT_EQ(got.size(), ref.size());
        const std::set<std::size_t> got_set(got.begin(), got.end());
        for (std::size_t id : ref) agree += got_set.count(id);
        total += ref.size();

        // NDCG@20 of each ranking against the f64 top-k as the relevant
        // set: the reference scores 1.0 by construction, so the delta is
        // how much ranking quality the narrowing cost.
        std::vector<int> relevant(ref.begin(), ref.end());
        const double ndcg_ref = eval::NdcgAtK(ref, relevant, k);
        const double ndcg_f32 = eval::NdcgAtK(got, relevant, k);
        EXPECT_NEAR(ndcg_ref, 1.0, 1e-12);
        EXPECT_LE(std::abs(ndcg_ref - ndcg_f32), 1e-4)
            << "d=" << shape.dim << " H=" << shape.herbs
            << " threads=" << threads << " scalar=" << force_scalar;
      }
      const double agreement =
          static_cast<double>(agree) / static_cast<double>(total);
      EXPECT_GE(agreement, 0.999)
          << "d=" << shape.dim << " H=" << shape.herbs
          << " threads=" << threads << " scalar=" << force_scalar;
    }
  }
  parallel::SetNumThreads(original_threads);
}

TEST(PrecisionParityTest, DispatchedKernels) { RunParitySweep(false); }

TEST(PrecisionParityTest, ForcedScalarKernels) { RunParitySweep(true); }

// --------------------------------------------------------------------------
// int8 vs f64 serving parity: the acceptance properties the quantized path
// ships under. Same sweep grid as f32 (4 shapes × {1,4} threads × both
// dispatch modes) with bars matched to 8-bit resolution:
//   * top-20 agreement >= 0.99 aggregated over each cell's queries, and
//   * mean graded-NDCG@20 delta <= 1e-3 per cell, with gains taken from the
//     f64 scores themselves (shifted non-negative). Binary relevance would
//     charge ~0.026 for a single boundary swap of two statistically tied
//     herbs, which measures tie-breaking luck rather than quality; graded
//     gains charge a swap by the actual score mass it loses.
//
// The checkpoint gives herb rows a log-normal norm spread, matching trained
// recommendation embeddings where frequent-herb rows grow larger norms (see
// bench_fig5_herb_freq). Per-row quantization scales absorb the spread
// exactly — it is the workload the per-row scheme exists for. With i.i.d.
// N(0,1) rows instead, adjacent top-20 scores are statistical ties and NO
// finite-precision scheme can reproduce their order.
// --------------------------------------------------------------------------

core::InferenceCheckpoint Int8ParityCheckpoint(std::size_t num_symptoms,
                                               std::size_t num_herbs,
                                               std::size_t dim,
                                               std::uint64_t seed) {
  Rng rng(seed);
  core::InferenceCheckpoint ckpt = ParityCheckpoint(num_symptoms, num_herbs,
                                                    dim, seed);
  for (std::size_t i = 0; i < num_herbs; ++i) {
    const double scale = std::exp(rng.Normal(0.0, 0.5));
    for (std::size_t c = 0; c < dim; ++c) ckpt.herb_embeddings(i, c) *= scale;
  }
  return ckpt;
}

// NDCG@k of `ranking` where herb j's gain is its f64 score shifted to be
// non-negative. The ideal ranking is the f64 descending score order, so the
// f64 ranking itself scores exactly 1.
double GradedNdcgAtK(const std::vector<std::size_t>& ranking,
                     const std::vector<double>& scores, std::size_t k) {
  const double lo = *std::min_element(scores.begin(), scores.end());
  std::vector<double> gains(scores.size());
  for (std::size_t j = 0; j < scores.size(); ++j) gains[j] = scores[j] - lo;
  std::vector<double> ideal = gains;
  std::sort(ideal.begin(), ideal.end(),
            [](double a, double b) { return a > b; });
  double dcg = 0.0, idcg = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double weight = 1.0 / std::log2(static_cast<double>(i) + 2.0);
    dcg += gains[ranking[i]] * weight;
    idcg += ideal[i] * weight;
  }
  return idcg > 0.0 ? dcg / idcg : 1.0;
}

void RunInt8ParitySweep(bool force_scalar) {
  constexpr std::size_t kTopK = 20;
  constexpr std::size_t kQueries = 64;
  ScopedForceScalar force(force_scalar);
  struct Shape {
    std::size_t dim, herbs;
  };
  const Shape shapes[] = {{8, 40}, {16, 257}, {64, 753}, {33, 100}};
  const std::size_t original_threads = parallel::GetNumThreads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::SetNumThreads(threads);
    for (const Shape& shape : shapes) {
      const std::size_t num_symptoms = 48;
      core::InferenceCheckpoint ckpt =
          Int8ParityCheckpoint(num_symptoms, shape.herbs, shape.dim, 907);
      auto f64_store = serve::EmbeddingStore::Build(ckpt);
      auto s8_store = serve::EmbeddingStore::Build(ckpt, Precision::kInt8);
      ASSERT_TRUE(f64_store.ok());
      ASSERT_TRUE(s8_store.ok());

      Rng rng(shape.dim * 1000 + shape.herbs);
      std::size_t agree = 0, total = 0;
      double ndcg_delta_sum = 0.0;
      std::size_t query_count = 0;
      for (const auto& raw : ParityQueries(kQueries, num_symptoms, &rng)) {
        const serve::CanonicalQuery q =
            *serve::Canonicalize(raw, num_symptoms);
        const std::size_t k = std::min(kTopK, f64_store->num_herbs());
        const std::vector<double> ref_scores = f64_store->ScoreOne(q);
        const std::vector<std::size_t> ref = eval::TopK(ref_scores, k);
        const std::vector<std::size_t> got =
            eval::TopK(s8_store->ScoreOne(q), k);
        ASSERT_EQ(got.size(), ref.size());
        const std::set<std::size_t> got_set(got.begin(), got.end());
        for (std::size_t id : ref) agree += got_set.count(id);
        total += ref.size();

        const double ndcg_ref = GradedNdcgAtK(ref, ref_scores, k);
        const double ndcg_s8 = GradedNdcgAtK(got, ref_scores, k);
        EXPECT_NEAR(ndcg_ref, 1.0, 1e-12);
        ndcg_delta_sum += std::abs(ndcg_ref - ndcg_s8);
        ++query_count;
      }
      const double agreement =
          static_cast<double>(agree) / static_cast<double>(total);
      EXPECT_GE(agreement, 0.99)
          << "d=" << shape.dim << " H=" << shape.herbs
          << " threads=" << threads << " scalar=" << force_scalar;
      const double mean_ndcg_delta =
          ndcg_delta_sum / static_cast<double>(query_count);
      EXPECT_LE(mean_ndcg_delta, 1e-3)
          << "d=" << shape.dim << " H=" << shape.herbs
          << " threads=" << threads << " scalar=" << force_scalar;
    }
  }
  parallel::SetNumThreads(original_threads);
}

TEST(Int8ParityTest, DispatchedKernels) { RunInt8ParitySweep(false); }

TEST(Int8ParityTest, ForcedScalarKernels) { RunInt8ParitySweep(true); }

TEST(Int8ParityTest, BatchedScoresBitIdenticalToSingleQueryPerBackend) {
  // The end-to-end face of the kernel-level GEMM==GEMV property: within one
  // backend, int8 ScoreBatch rows must reproduce ScoreOne bit for bit. (The
  // two backends may differ from each other: the f32 SI-MLP stage that
  // produces the activations is reduction-order sensitive, so only the
  // int8 stage itself is cross-backend exact — covered at kernel level by
  // GemmRowsBitIdenticalToGemvAndAcrossBackends.)
  core::InferenceCheckpoint ckpt = Int8ParityCheckpoint(48, 257, 33, 907);
  auto store = serve::EmbeddingStore::Build(ckpt, Precision::kInt8);
  ASSERT_TRUE(store.ok());
  Rng rng(77);
  const auto raw = ParityQueries(12, 48, &rng);
  std::vector<serve::CanonicalQuery> batch;
  for (const auto& ids : raw) batch.push_back(*serve::Canonicalize(ids, 48));

  for (const bool force_scalar : {false, true}) {
    if (!force_scalar && !SimdAvailable()) continue;
    ScopedForceScalar force(force_scalar);
    const tensor::Matrix batched = store->ScoreBatch(batch);
    ASSERT_EQ(batched.rows(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::vector<double> one = store->ScoreOne(batch[i]);
      ASSERT_EQ(one.size(), batched.cols());
      for (std::size_t j = 0; j < batched.cols(); ++j) {
        ASSERT_EQ(batched(i, j), one[j])
            << "batch-vs-single divergence at (" << i << "," << j
            << ") scalar=" << force_scalar;
      }
    }
  }
}

TEST(PrecisionParityTest, EngineEndToEndTopKAgreement) {
  // Same property through the full serving engine (canonicalize → cache →
  // parallel GEMM → top-k), 1 and 4 threads.
  constexpr std::size_t kTopK = 20;
  const std::size_t original_threads = parallel::GetNumThreads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::SetNumThreads(threads);
    core::InferenceCheckpoint ckpt = ParityCheckpoint(48, 257, 16, 907);
    serve::ServingEngineOptions options;
    options.cache_capacity = 0;  // every request exercises the GEMM
    auto f64_engine = serve::ServingEngine::Create(ckpt, options);
    options.precision = Precision::kFloat32;
    auto f32_engine = serve::ServingEngine::Create(ckpt, options);
    ASSERT_TRUE(f64_engine.ok());
    ASSERT_TRUE(f32_engine.ok());

    Rng rng(31);
    const auto queries = ParityQueries(64, 48, &rng);
    auto ref = (*f64_engine)->RecommendBatch(queries, kTopK);
    auto got = (*f32_engine)->RecommendBatch(queries, kTopK);
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE(got.ok());
    std::size_t agree = 0, total = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::set<std::size_t> got_set((*got)[i].begin(), (*got)[i].end());
      for (std::size_t id : (*ref)[i]) agree += got_set.count(id);
      total += (*ref)[i].size();
    }
    EXPECT_GE(static_cast<double>(agree) / static_cast<double>(total), 0.999)
        << "threads=" << threads;
  }
  parallel::SetNumThreads(original_threads);
}

}  // namespace
}  // namespace kernels
}  // namespace tensor
}  // namespace smgcn
