// Autograd correctness: every op's analytic gradient is checked against
// central finite differences, plus graph-mechanics tests (diamond sharing,
// gradient accumulation, constant short-circuiting).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/graph/csr_matrix.h"
#include "src/util/random.h"

namespace smgcn {
namespace autograd {
namespace {

using tensor::Matrix;

/// Builds a scalar loss from the current values of `leaves`.
using GraphBuilder = std::function<Variable()>;

/// Verifies d loss / d leaf against central differences for every leaf
/// entry. The builder must read the leaves' *current* values each call.
void CheckGradients(const std::vector<Variable>& leaves, const GraphBuilder& build,
                    double tolerance = 1e-6) {
  // Analytic gradients.
  for (const Variable& leaf : leaves) leaf->ZeroGrad();
  Variable loss = build();
  ASSERT_EQ(loss->value().rows(), 1u);
  ASSERT_EQ(loss->value().cols(), 1u);
  Backward(loss);
  std::vector<Matrix> analytic;
  analytic.reserve(leaves.size());
  for (const Variable& leaf : leaves) analytic.push_back(leaf->grad());

  // Numeric gradients.
  const double h = 1e-5;
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    Matrix& value = leaves[l]->mutable_value();
    for (std::size_t r = 0; r < value.rows(); ++r) {
      for (std::size_t c = 0; c < value.cols(); ++c) {
        const double original = value(r, c);
        value(r, c) = original + h;
        const double up = build()->value()(0, 0);
        value(r, c) = original - h;
        const double down = build()->value()(0, 0);
        value(r, c) = original;
        const double numeric = (up - down) / (2.0 * h);
        EXPECT_NEAR(analytic[l](r, c), numeric, tolerance)
            << "leaf " << l << " entry (" << r << ", " << c << ")";
      }
    }
  }
}

Variable Leaf(std::size_t rows, std::size_t cols, Rng* rng) {
  return MakeVariable(Matrix::RandomNormal(rows, cols, 0.0, 1.0, rng),
                      /*requires_grad=*/true);
}

TEST(AutogradTest, AddGradient) {
  Rng rng(1);
  auto a = Leaf(3, 4, &rng), b = Leaf(3, 4, &rng);
  CheckGradients({a, b}, [&] { return Sum(Add(a, b)); });
}

TEST(AutogradTest, SubGradient) {
  Rng rng(2);
  auto a = Leaf(2, 3, &rng), b = Leaf(2, 3, &rng);
  CheckGradients({a, b}, [&] { return Sum(Sub(a, b)); });
}

TEST(AutogradTest, MulGradient) {
  Rng rng(3);
  auto a = Leaf(3, 3, &rng), b = Leaf(3, 3, &rng);
  CheckGradients({a, b}, [&] { return Sum(Mul(a, b)); });
}

TEST(AutogradTest, ScaleGradient) {
  Rng rng(4);
  auto a = Leaf(2, 5, &rng);
  CheckGradients({a}, [&] { return Sum(Scale(a, -2.5)); });
}

TEST(AutogradTest, AddRowBroadcastGradient) {
  Rng rng(5);
  auto a = Leaf(4, 3, &rng);
  auto bias = Leaf(1, 3, &rng);
  // Squared output so the bias gradient is row-dependent.
  CheckGradients({a, bias}, [&] {
    Variable y = AddRowBroadcast(a, bias);
    return Sum(Mul(y, y));
  });
}

TEST(AutogradTest, MatMulGradient) {
  Rng rng(6);
  auto a = Leaf(3, 4, &rng), b = Leaf(4, 2, &rng);
  CheckGradients({a, b}, [&] {
    Variable y = MatMul(a, b);
    return Sum(Mul(y, y));
  });
}

TEST(AutogradTest, MatMulTransposedGradient) {
  Rng rng(7);
  auto a = Leaf(3, 4, &rng), b = Leaf(5, 4, &rng);
  CheckGradients({a, b}, [&] {
    Variable y = MatMulTransposed(a, b);
    return Sum(Mul(y, y));
  });
}

TEST(AutogradTest, SpMMGradient) {
  Rng rng(8);
  const graph::CsrMatrix adj = graph::CsrMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0}, {0, 3, -1.0}, {2, 0, 0.5}, {2, 2, 1.5}});
  auto x = Leaf(4, 3, &rng);
  CheckGradients({x}, [&] {
    Variable y = SpMM(adj, x);
    return Sum(Mul(y, y));
  });
}

TEST(AutogradTest, SpMMForwardMatchesDense) {
  Rng rng(9);
  const graph::CsrMatrix adj =
      graph::CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}, {1, 2, 3.0}});
  auto x = MakeConstant(Matrix::RandomNormal(3, 2, 0.0, 1.0, &rng));
  EXPECT_LT(SpMM(adj, x)->value().MaxAbsDiff(adj.ToDense().MatMul(x->value())),
            1e-12);
}

TEST(AutogradTest, ConcatColsGradient) {
  Rng rng(10);
  auto a = Leaf(3, 2, &rng), b = Leaf(3, 4, &rng);
  CheckGradients({a, b}, [&] {
    Variable y = ConcatCols(a, b);
    return Sum(Mul(y, y));
  });
}

TEST(AutogradTest, GatherRowsGradientWithDuplicates) {
  Rng rng(11);
  auto a = Leaf(4, 3, &rng);
  const std::vector<std::size_t> idx{1, 1, 3, 0};
  CheckGradients({a}, [&] {
    Variable y = GatherRows(a, idx);
    return Sum(Mul(y, y));
  });
}

TEST(AutogradTest, MeanRowsGradient) {
  Rng rng(12);
  auto a = Leaf(5, 3, &rng);
  CheckGradients({a}, [&] {
    Variable y = MeanRows(a);
    return Sum(Mul(y, y));
  });
}

TEST(AutogradTest, MulColBroadcastGradient) {
  Rng rng(13);
  auto a = Leaf(4, 3, &rng);
  auto col = Leaf(4, 1, &rng);
  CheckGradients({a, col}, [&] {
    Variable y = MulColBroadcast(a, col);
    return Sum(Mul(y, y));
  });
}

TEST(AutogradTest, TanhGradient) {
  Rng rng(14);
  auto a = Leaf(3, 3, &rng);
  CheckGradients({a}, [&] { return Sum(Tanh(a)); });
}

TEST(AutogradTest, ReluGradient) {
  Rng rng(15);
  auto a = Leaf(4, 4, &rng);
  // Nudge values away from the kink so finite differences are valid.
  a->mutable_value().Apply(
      [](double v) { return std::fabs(v) < 0.05 ? v + 0.1 : v; });
  CheckGradients({a}, [&] { return Sum(Relu(a)); });
}

TEST(AutogradTest, LeakyReluGradient) {
  Rng rng(16);
  auto a = Leaf(4, 4, &rng);
  a->mutable_value().Apply(
      [](double v) { return std::fabs(v) < 0.05 ? v + 0.1 : v; });
  CheckGradients({a}, [&] { return Sum(LeakyRelu(a, 0.2)); });
}

TEST(AutogradTest, SigmoidGradient) {
  Rng rng(17);
  auto a = Leaf(3, 3, &rng);
  CheckGradients({a}, [&] { return Sum(Sigmoid(a)); });
}

TEST(AutogradTest, SquaredNormGradient) {
  Rng rng(18);
  auto a = Leaf(3, 4, &rng);
  CheckGradients({a}, [&] { return SquaredNorm(a); });
}

TEST(AutogradTest, CompositeNetworkGradient) {
  // tanh(x W1) W2 summed with an L2 term — a miniature of the real model.
  Rng rng(19);
  auto x = Leaf(4, 3, &rng);
  auto w1 = Leaf(3, 5, &rng);
  auto w2 = Leaf(5, 2, &rng);
  CheckGradients({x, w1, w2}, [&] {
    Variable h = Tanh(MatMul(x, w1));
    Variable y = MatMul(h, w2);
    return Add(Sum(Mul(y, y)), Scale(SquaredNorm(w1), 0.1));
  });
}

TEST(AutogradTest, DiamondGraphAccumulatesBothPaths) {
  // y = a + a: dy/da must be 2 everywhere.
  auto a = MakeVariable(Matrix{{1.0, 2.0}}, true);
  Variable loss = Sum(Add(a, a));
  Backward(loss);
  EXPECT_DOUBLE_EQ(a->grad()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a->grad()(0, 1), 2.0);
}

TEST(AutogradTest, SharedSubexpressionVisitedOnce) {
  // loss = sum(h) + sum(h*h) where h = tanh(a); gradient must match the
  // analytic (1 + 2h) * (1 - h^2).
  auto a = MakeVariable(Matrix{{0.3, -0.7}}, true);
  Variable h = Tanh(a);
  Variable loss = Add(Sum(h), Sum(Mul(h, h)));
  Backward(loss);
  for (std::size_t c = 0; c < 2; ++c) {
    const double hv = std::tanh(a->value()(0, c));
    EXPECT_NEAR(a->grad()(0, c), (1.0 + 2.0 * hv) * (1.0 - hv * hv), 1e-12);
  }
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  auto c = MakeConstant(Matrix{{1.0, 2.0}});
  auto a = MakeVariable(Matrix{{3.0, 4.0}}, true);
  Variable loss = Sum(Mul(a, c));
  EXPECT_TRUE(loss->requires_grad());
  Backward(loss);
  EXPECT_DOUBLE_EQ(a->grad()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a->grad()(0, 1), 2.0);
  EXPECT_FALSE(c->requires_grad());
}

TEST(AutogradTest, AllConstantGraphRequiresNoGrad) {
  auto a = MakeConstant(Matrix{{1.0}});
  auto b = MakeConstant(Matrix{{2.0}});
  Variable y = Add(a, b);
  EXPECT_FALSE(y->requires_grad());
  EXPECT_DOUBLE_EQ(y->value()(0, 0), 3.0);
}

TEST(AutogradTest, RepeatedBackwardAccumulates) {
  auto a = MakeVariable(Matrix{{2.0}}, true);
  Variable l1 = Sum(Scale(a, 3.0));
  Backward(l1);
  EXPECT_DOUBLE_EQ(a->grad()(0, 0), 3.0);
  Variable l2 = Sum(Scale(a, 4.0));
  Backward(l2);
  EXPECT_DOUBLE_EQ(a->grad()(0, 0), 7.0);  // 3 + 4
  a->ZeroGrad();
  EXPECT_DOUBLE_EQ(a->grad()(0, 0), 0.0);
}

TEST(AutogradTest, DropoutIdentityWhenNotTraining) {
  Rng rng(20);
  auto a = Leaf(3, 3, &rng);
  Variable y = Dropout(a, 0.5, &rng, /*training=*/false);
  EXPECT_EQ(y.get(), a.get());
  Variable z = Dropout(a, 0.0, &rng, /*training=*/true);
  EXPECT_EQ(z.get(), a.get());
}

TEST(AutogradTest, DropoutMasksAndRescales) {
  Rng rng(21);
  auto a = MakeVariable(Matrix::Full(50, 50, 1.0), true);
  Variable y = Dropout(a, 0.4, &rng, /*training=*/true);
  std::size_t zeros = 0, scaled = 0;
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 50; ++c) {
      const double v = y->value()(r, c);
      if (v == 0.0) {
        ++zeros;
      } else {
        EXPECT_NEAR(v, 1.0 / 0.6, 1e-12);
        ++scaled;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 2500.0, 0.4, 0.05);
  EXPECT_GT(scaled, 0u);
  // Expected value preserved (inverted dropout).
  EXPECT_NEAR(y->value().Sum() / 2500.0, 1.0, 0.07);
}

TEST(AutogradTest, DropoutGradientMatchesMask) {
  Rng rng(22);
  auto a = MakeVariable(Matrix::Full(10, 10, 2.0), true);
  Variable y = Dropout(a, 0.3, &rng, /*training=*/true);
  Backward(Sum(y));
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      const double expected = y->value()(r, c) == 0.0 ? 0.0 : 1.0 / 0.7;
      EXPECT_NEAR(a->grad()(r, c), expected, 1e-12);
    }
  }
}

TEST(AutogradTest, MixedConstantAndVariableMatMul) {
  // Gradient flows only into the trainable side.
  Rng rng(23);
  auto w = MakeVariable(Matrix::RandomNormal(3, 2, 0.0, 1.0, &rng), true);
  auto x = MakeConstant(Matrix::RandomNormal(4, 3, 0.0, 1.0, &rng));
  Variable y = MatMul(x, w);
  Backward(Sum(y));
  EXPECT_GT(w->grad().Norm(), 0.0);
  // The constant never allocated a meaningful gradient path.
  EXPECT_FALSE(x->requires_grad());
}

TEST(AutogradTest, GatherRowsEmptyIndices) {
  auto a = MakeVariable(Matrix(3, 2, 1.0), true);
  Variable y = GatherRows(a, {});
  EXPECT_EQ(y->value().rows(), 0u);
  EXPECT_EQ(y->value().cols(), 2u);
}

TEST(AutogradTest, ScaleOfScalarChainsCorrectly) {
  auto a = MakeVariable(Matrix{{3.0}}, true);
  Variable y = Scale(Scale(a, 2.0), -4.0);
  EXPECT_DOUBLE_EQ(y->value()(0, 0), -24.0);
  Backward(y);
  EXPECT_DOUBLE_EQ(a->grad()(0, 0), -8.0);
}

TEST(AutogradTest, DeepChainGradient) {
  // 12 stacked tanh layers: gradients stay finite and correct via the
  // finite-difference check (guards against traversal-order bugs).
  Rng rng(29);
  auto x = MakeVariable(Matrix::RandomNormal(2, 3, 0.0, 0.5, &rng), true);
  auto build = [&] {
    Variable h = x;
    for (int i = 0; i < 12; ++i) h = Tanh(h);
    return Sum(h);
  };
  x->ZeroGrad();
  Backward(build());
  const Matrix analytic = x->grad();
  const double h = 1e-5;
  const double orig = x->mutable_value()(0, 0);
  x->mutable_value()(0, 0) = orig + h;
  const double up = build()->value()(0, 0);
  x->mutable_value()(0, 0) = orig - h;
  const double down = build()->value()(0, 0);
  x->mutable_value()(0, 0) = orig;
  EXPECT_NEAR(analytic(0, 0), (up - down) / (2.0 * h), 1e-7);
}

TEST(AutogradDeathTest, BackwardRequiresScalarRoot) {
  auto a = MakeVariable(Matrix(2, 2, 1.0), true);
  Variable y = Scale(a, 2.0);
  EXPECT_DEATH(Backward(y), "scalar");
}

}  // namespace
}  // namespace autograd
}  // namespace smgcn
