// Unit tests for ranking metrics (eqs. 16-18) and the batched evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "src/eval/evaluator.h"
#include "src/eval/metrics.h"

namespace smgcn {
namespace eval {
namespace {

using data::Corpus;
using data::Vocabulary;

// --------------------------------------------------------------------------
// TopK
// --------------------------------------------------------------------------

TEST(TopKTest, OrdersByDescendingScore) {
  EXPECT_EQ(TopK({0.1, 0.9, 0.5, 0.7}, 3), (std::vector<std::size_t>{1, 3, 2}));
}

TEST(TopKTest, KLargerThanSizeReturnsAll) {
  EXPECT_EQ(TopK({0.2, 0.1}, 10), (std::vector<std::size_t>{0, 1}));
}

TEST(TopKTest, TiesBrokenByLowerIndex) {
  EXPECT_EQ(TopK({0.5, 0.5, 0.5}, 2), (std::vector<std::size_t>{0, 1}));
}

TEST(TopKTest, ZeroKIsEmpty) { EXPECT_TRUE(TopK({1.0}, 0).empty()); }

// --------------------------------------------------------------------------
// Precision / Recall / NDCG
// --------------------------------------------------------------------------

TEST(MetricsTest, PrecisionCountsHitsOverK) {
  const std::vector<std::size_t> ranked{4, 2, 7, 1, 9};
  const std::vector<int> relevant{2, 9, 5};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 2), 0.5);   // hit: 2
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 5), 0.4);   // hits: 2, 9
}

TEST(MetricsTest, PrecisionWithShortRankedList) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2}, {1, 2}, 10), 1.0);  // K = min(10, 2)
}

TEST(MetricsTest, RecallCoversRelevantSet) {
  const std::vector<std::size_t> ranked{4, 2, 7, 1, 9};
  const std::vector<int> relevant{2, 9, 5};
  EXPECT_NEAR(RecallAtK(ranked, relevant, 5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(RecallAtK(ranked, relevant, 2), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {}, 5), 0.0);
}

TEST(MetricsTest, PerfectRankingScoresOne) {
  const std::vector<std::size_t> ranked{3, 1, 2};
  const std::vector<int> relevant{1, 2, 3};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, relevant, 3), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(ranked, relevant, 3), 1.0);
}

TEST(MetricsTest, NdcgRewardsEarlierHits) {
  const std::vector<int> relevant{0};
  const double early = NdcgAtK({0, 1, 2}, relevant, 3);
  const double late = NdcgAtK({2, 1, 0}, relevant, 3);
  EXPECT_DOUBLE_EQ(early, 1.0);
  EXPECT_NEAR(late, 1.0 / std::log2(4.0), 1e-12);
  EXPECT_GT(early, late);
}

TEST(MetricsTest, NdcgHandComputedCase) {
  // Hits at ranks 1 and 3 out of 2 relevant items.
  const std::vector<std::size_t> ranked{5, 9, 7};
  const std::vector<int> relevant{5, 7};
  const double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  const double idcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(ranked, relevant, 3), dcg / idcg, 1e-12);
}

TEST(MetricsTest, NoHitsGivesZeroEverywhere) {
  const MetricsAtK m = ComputeMetricsAtK({1, 2, 3}, {7, 8}, 3);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
}

TEST(MetricsTest, MetricsIgnoreNegativeRelevantIds) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({0}, {-1, 0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({0}, {-1, 0}, 1), 1.0);
}

TEST(MetricsTest, AveragePrecisionHandComputed) {
  // Hits at ranks 1 and 3 of 2 relevant: AP = (1/1 + 2/3) / 2.
  const std::vector<std::size_t> ranked{5, 9, 7};
  const std::vector<int> relevant{5, 7};
  EXPECT_NEAR(AveragePrecisionAtK(ranked, relevant, 3), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(ranked, relevant, 1), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(ranked, {}, 3), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({1, 2, 3}, {9}, 3), 0.0);
}

TEST(MetricsTest, HitRateIsBinary) {
  EXPECT_DOUBLE_EQ(HitRateAtK({1, 2, 3}, {3}, 3), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK({1, 2, 3}, {3}, 2), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK({1, 2, 3}, {9}, 3), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK({}, {1}, 5), 0.0);
}

TEST(MetricsTest, CatalogCoverage) {
  EXPECT_DOUBLE_EQ(CatalogCoverage({{0, 1}, {1, 2}}, 10), 0.3);
  EXPECT_DOUBLE_EQ(CatalogCoverage({}, 10), 0.0);
  EXPECT_DOUBLE_EQ(CatalogCoverage({{0, 1, 2, 3}}, 4), 1.0);
  EXPECT_DOUBLE_EQ(CatalogCoverage({{0}}, 0), 0.0);
  // Out-of-catalogue items are ignored.
  EXPECT_DOUBLE_EQ(CatalogCoverage({{0, 99}}, 10), 0.1);
}

// --------------------------------------------------------------------------
// Evaluator
// --------------------------------------------------------------------------

Corpus TestCorpus() {
  Corpus corpus(Vocabulary::Synthetic(3, "s"), Vocabulary::Synthetic(6, "h"), {});
  EXPECT_TRUE(corpus.Add({{0}, {0, 1}}).ok());
  EXPECT_TRUE(corpus.Add({{1}, {2}}).ok());
  return corpus;
}

TEST(EvaluatorTest, PerfectScorerGetsPerfectRecall) {
  const Corpus corpus = TestCorpus();
  // Scores the true herbs of each symptom set highest.
  HerbScorer scorer = [&corpus](const std::vector<int>& symptoms) {
    std::vector<double> scores(corpus.num_herbs(), 0.0);
    if (symptoms[0] == 0) {
      scores[0] = 2.0;
      scores[1] = 1.5;
    } else {
      scores[2] = 2.0;
    }
    return scores;
  };
  auto report = Evaluate(scorer, corpus, {2, 5});
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->At(2).recall, 1.0);
  EXPECT_DOUBLE_EQ(report->At(5).recall, 1.0);
  EXPECT_DOUBLE_EQ(report->At(2).ndcg, 1.0);
  // p@2 averages 1.0 (two hits) and 0.5 (one hit of two slots).
  EXPECT_DOUBLE_EQ(report->At(2).precision, 0.75);
  EXPECT_EQ(report->num_prescriptions, 2u);
}

TEST(EvaluatorTest, PaperRowOrdering) {
  const Corpus corpus = TestCorpus();
  HerbScorer scorer = [&corpus](const std::vector<int>&) {
    return std::vector<double>(corpus.num_herbs(), 0.0);
  };
  auto report = Evaluate(scorer, corpus, {5, 10, 20});
  ASSERT_TRUE(report.ok());
  const auto row = report->PaperRow();
  ASSERT_EQ(row.size(), 9u);  // p@5 p@10 p@20 r@5 r@10 r@20 n@5 n@10 n@20
}

TEST(EvaluatorTest, RejectsEmptyCorpusAndCutoffs) {
  Corpus empty(Vocabulary::Synthetic(1, "s"), Vocabulary::Synthetic(1, "h"), {});
  HerbScorer scorer = [](const std::vector<int>&) {
    return std::vector<double>{0.0};
  };
  EXPECT_EQ(Evaluate(scorer, empty).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Evaluate(scorer, TestCorpus(), {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EvaluatorTest, DetectsWrongScoreWidth) {
  HerbScorer bad = [](const std::vector<int>&) {
    return std::vector<double>{1.0};  // corpus has 6 herbs
  };
  EXPECT_EQ(Evaluate(bad, TestCorpus()).status().code(), StatusCode::kInternal);
}

TEST(EvaluatorTest, ToStringContainsAllCutoffs) {
  const Corpus corpus = TestCorpus();
  HerbScorer scorer = [&corpus](const std::vector<int>&) {
    return std::vector<double>(corpus.num_herbs(), 0.0);
  };
  auto report = Evaluate(scorer, corpus, {5, 10});
  ASSERT_TRUE(report.ok());
  const std::string s = report->ToString();
  EXPECT_NE(s.find("p@5"), std::string::npos);
  EXPECT_NE(s.find("ndcg@10"), std::string::npos);
}

TEST(EvaluatorDeathTest, MissingCutoffAborts) {
  EvaluationReport report;
  report.cutoffs = {5};
  report.metrics = {MetricsAtK{}};
  EXPECT_DEATH(report.At(10), "not present");
}

}  // namespace
}  // namespace eval
}  // namespace smgcn
