// Integration tests across the full pipeline: generate -> persist ->
// reload -> split -> build graphs -> train -> evaluate, plus cross-model
// ordering expectations on the synthetic corpus.
#include <gtest/gtest.h>

#include "src/core/registry.h"
#include "src/core/smgcn_model.h"
#include "src/data/corpus_io.h"
#include "src/data/split.h"
#include "src/data/tcm_generator.h"
#include "src/graph/graph_builder.h"
#include "src/graph/graph_stats.h"
#include "tests/test_util.h"

namespace smgcn {
namespace {

TEST(IntegrationTest, CorpusPersistenceRoundTripPreservesTraining) {
  // Generate, save to disk, reload, and verify the reloaded corpus trains
  // to identical results (vocabulary order is preserved by the format).
  data::TcmGenerator gen(testutil::SmallCorpusConfig());
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());

  const std::string path = testing::TempDir() + "/smgcn_integration_corpus.tsv";
  ASSERT_TRUE(data::SaveCorpus(*corpus, path).ok());
  // Reloading against the original vocabularies keeps ids aligned (a free
  // reload would renumber by first-seen order, which is also valid but not
  // id-identical).
  auto reloaded = data::LoadCorpus(path, &*corpus);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), corpus->size());
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    EXPECT_EQ(reloaded->at(i), corpus->at(i));
  }
  EXPECT_EQ(reloaded->num_symptoms(), corpus->num_symptoms());
  EXPECT_EQ(reloaded->num_herbs(), corpus->num_herbs());
}

TEST(IntegrationTest, GraphStatisticsMatchPaperShape) {
  // The paper notes the bipartite graph is much denser than the synergy
  // graphs and that synergy degree distributions are smoother (smaller
  // stddev) — the generator must reproduce that shape.
  const auto split = testutil::SmallSplit();
  auto graphs = graph::BuildTcmGraphs(split.train, {2, 5});
  ASSERT_TRUE(graphs.ok());
  const auto sh = graph::ComputeDegreeStats(graphs->symptom_herb);
  const auto ss = graph::ComputeDegreeStats(graphs->symptom_symptom);
  const auto hh = graph::ComputeDegreeStats(graphs->herb_herb);
  EXPECT_GT(sh.mean_degree, ss.mean_degree);
  EXPECT_GT(sh.mean_degree, hh.mean_degree);
  EXPECT_GT(sh.stddev_degree, ss.stddev_degree);
  EXPECT_GT(ss.num_edges, 0u);
  EXPECT_GT(hh.num_edges, 0u);
}

TEST(IntegrationTest, FullPipelineSmgcnBeatsPopularityByMargin) {
  const auto split = testutil::SmallSplit();

  core::ModelConfig model_cfg;
  model_cfg.embedding_dim = 16;
  model_cfg.layer_dims = {32, 32};
  model_cfg.thresholds = {2, 5};
  core::TrainConfig train_cfg;
  train_cfg.learning_rate = 3e-3;
  train_cfg.l2_lambda = 1e-4;
  train_cfg.batch_size = 128;
  // Enough budget that the margin assertions hold across parameter
  // initialisations (the margin is init-sensitive at small budgets).
  train_cfg.epochs = 50;
  train_cfg.seed = 11;

  core::SmgcnModel model(model_cfg, train_cfg);
  ASSERT_TRUE(model.Fit(split.train).ok());

  auto smgcn_report = eval::Evaluate(model.AsScorer(), split.test);
  auto pop_report =
      eval::Evaluate(testutil::PopularityScorer(split.train), split.test);
  ASSERT_TRUE(smgcn_report.ok());
  ASSERT_TRUE(pop_report.ok());
  EXPECT_GT(smgcn_report->At(5).precision, pop_report->At(5).precision);
  EXPECT_GT(smgcn_report->At(20).recall, pop_report->At(20).recall + 0.05);
  EXPECT_GT(smgcn_report->At(5).ndcg, pop_report->At(5).ndcg);
}

TEST(IntegrationTest, SgeAndSiEachHelpOnAverage) {
  // Ablation direction (paper Table V): the full SMGCN should not be worse
  // than the bare Bipar-GCN on the synthetic corpus. One seed and a small
  // corpus leave noise, so assert with a small slack rather than strictly.
  const auto split = testutil::SmallSplit();
  auto run = [&split](bool use_sge, bool use_si) {
    core::ModelConfig cfg;
    cfg.embedding_dim = 16;
    cfg.layer_dims = {32, 32};
    // Thresholds matter (paper Fig. 7): dense synergy graphs inject noise
    // through the sum aggregator, sparse ones carry clean signal.
    cfg.thresholds = {8, 30};
    cfg.use_sge = use_sge;
    cfg.use_si_mlp = use_si;
    core::TrainConfig train;
    train.learning_rate = 3e-3;
    train.l2_lambda = 1e-4;
    train.batch_size = 128;
    train.epochs = 25;
    train.seed = 11;
    core::SmgcnModel model(cfg, train);
    SMGCN_CHECK_OK(model.Fit(split.train));
    auto report = eval::Evaluate(model.AsScorer(), split.test);
    SMGCN_CHECK(report.ok());
    return report->At(5).precision;
  };
  const double bare = run(false, false);
  const double full = run(true, true);
  EXPECT_GT(full, bare - 0.01);
}

TEST(IntegrationTest, UnseenSymptomSetsAreScorable) {
  // Score a symptom combination that never occurs in training.
  const auto split = testutil::SmallSplit();
  core::ModelSpec spec = core::DefaultSpecFor("SMGCN");
  spec.model.embedding_dim = 16;
  spec.model.layer_dims = {24};
  spec.model.thresholds = {2, 5};
  spec.train.epochs = 5;
  spec.train.batch_size = 128;
  auto model = core::MakeModel(spec);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split.train).ok());

  std::vector<int> weird_set;
  for (int s = 0; s < static_cast<int>(split.train.num_symptoms()); s += 7) {
    weird_set.push_back(s);
  }
  auto scores = (*model)->Score(weird_set);
  ASSERT_TRUE(scores.ok());
  for (double v : *scores) EXPECT_TRUE(std::isfinite(v));
}

TEST(IntegrationTest, TrainOnlyVocabularySharedWithTest) {
  // Test-set prescriptions must reference the same id space as training —
  // guaranteed by SplitCorpus sharing vocabularies.
  const auto split = testutil::SmallSplit();
  EXPECT_EQ(split.train.num_symptoms(), split.test.num_symptoms());
  EXPECT_EQ(split.train.num_herbs(), split.test.num_herbs());
  for (const auto& p : split.test.prescriptions()) {
    for (int s : p.symptoms) {
      EXPECT_LT(s, static_cast<int>(split.train.num_symptoms()));
    }
  }
}

}  // namespace
}  // namespace smgcn
