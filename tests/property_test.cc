// Property-based tests: parameterised sweeps asserting algebraic and
// metric invariants over many random instances.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "src/autograd/ops.h"
#include "src/core/checkpoint.h"
#include "src/data/corpus_io.h"
#include "src/eval/metrics.h"
#include "src/graph/csr_matrix.h"
#include "src/nn/loss.h"
#include "src/tensor/matrix.h"
#include "src/util/random.h"

namespace smgcn {
namespace {

using autograd::MakeVariable;
using autograd::Variable;
using tensor::Matrix;

// --------------------------------------------------------------------------
// Matrix algebra identities over random seeds
// --------------------------------------------------------------------------

class MatrixAlgebraProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixAlgebraProperty, TransposeOfProduct) {
  Rng rng(GetParam());
  const Matrix a = Matrix::RandomNormal(4, 6, 0.0, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(6, 3, 0.0, 1.0, &rng);
  // (AB)^T == B^T A^T
  EXPECT_LT(a.MatMul(b).Transpose().MaxAbsDiff(
                b.Transpose().MatMul(a.Transpose())),
            1e-12);
}

TEST_P(MatrixAlgebraProperty, Distributivity) {
  Rng rng(GetParam() + 1000);
  const Matrix a = Matrix::RandomNormal(3, 5, 0.0, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(5, 4, 0.0, 1.0, &rng);
  const Matrix c = Matrix::RandomNormal(5, 4, 0.0, 1.0, &rng);
  // A(B + C) == AB + AC
  EXPECT_LT(a.MatMul(b.Add(c)).MaxAbsDiff(a.MatMul(b).Add(a.MatMul(c))), 1e-11);
}

TEST_P(MatrixAlgebraProperty, SparseDenseAgreement) {
  Rng rng(GetParam() + 2000);
  Matrix dense = Matrix::RandomNormal(8, 6, 0.0, 1.0, &rng);
  dense.Apply([](double v) { return std::fabs(v) < 0.8 ? 0.0 : v; });
  const graph::CsrMatrix sparse = graph::CsrMatrix::FromDense(dense);
  const Matrix x = Matrix::RandomNormal(6, 5, 0.0, 1.0, &rng);
  EXPECT_LT(sparse.Multiply(x).MaxAbsDiff(dense.MatMul(x)), 1e-12);
  const Matrix y = Matrix::RandomNormal(8, 5, 0.0, 1.0, &rng);
  EXPECT_LT(sparse.TransposeMultiply(y).MaxAbsDiff(dense.Transpose().MatMul(y)),
            1e-12);
}

TEST_P(MatrixAlgebraProperty, NormAndDotConsistency) {
  Rng rng(GetParam() + 3000);
  const Matrix a = Matrix::RandomNormal(5, 5, 0.0, 2.0, &rng);
  EXPECT_NEAR(a.Dot(a), a.SquaredNorm(), 1e-9);
  EXPECT_NEAR(a.Norm() * a.Norm(), a.SquaredNorm(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixAlgebraProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --------------------------------------------------------------------------
// Composite autograd gradient checks over random seeds and shapes
// --------------------------------------------------------------------------

struct GradCase {
  std::uint64_t seed;
  std::size_t rows;
  std::size_t inner;
  std::size_t cols;
};

class CompositeGradientProperty : public testing::TestWithParam<GradCase> {};

TEST_P(CompositeGradientProperty, TwoLayerNetworkGradientsMatchNumeric) {
  const GradCase& tc = GetParam();
  Rng rng(tc.seed);
  auto x = MakeVariable(Matrix::RandomNormal(tc.rows, tc.inner, 0.0, 1.0, &rng), true);
  auto w1 = MakeVariable(Matrix::RandomNormal(tc.inner, tc.cols, 0.0, 1.0, &rng), true);
  auto w2 = MakeVariable(Matrix::RandomNormal(tc.rows, tc.cols, 0.0, 1.0, &rng), true);

  auto build = [&] {
    Variable h = autograd::Tanh(autograd::MatMul(x, w1));
    Variable y = autograd::MatMulTransposed(h, w2);  // rows x rows
    return autograd::Add(autograd::Sum(autograd::Sigmoid(y)),
                         autograd::Scale(autograd::SquaredNorm(w1), 0.05));
  };

  for (const Variable& leaf : {x, w1, w2}) leaf->ZeroGrad();
  autograd::Backward(build());
  const Matrix gx = x->grad();

  const double h = 1e-5;
  // Spot-check a handful of entries of x's gradient.
  Rng pick(tc.seed + 99);
  for (int trial = 0; trial < 6; ++trial) {
    const auto r = static_cast<std::size_t>(
        pick.UniformInt(0, static_cast<std::int64_t>(tc.rows) - 1));
    const auto c = static_cast<std::size_t>(
        pick.UniformInt(0, static_cast<std::int64_t>(tc.inner) - 1));
    const double orig = x->mutable_value()(r, c);
    x->mutable_value()(r, c) = orig + h;
    const double up = build()->value()(0, 0);
    x->mutable_value()(r, c) = orig - h;
    const double down = build()->value()(0, 0);
    x->mutable_value()(r, c) = orig;
    EXPECT_NEAR(gx(r, c), (up - down) / (2.0 * h), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, CompositeGradientProperty,
    testing::Values(GradCase{1, 3, 4, 5}, GradCase{2, 5, 2, 3},
                    GradCase{3, 2, 6, 2}, GradCase{4, 4, 4, 4},
                    GradCase{5, 6, 3, 7}));

// --------------------------------------------------------------------------
// Metric invariants over random rankings
// --------------------------------------------------------------------------

class MetricProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricProperty, RangesAndMonotonicity) {
  Rng rng(GetParam());
  // Random scores over 50 herbs, random relevant set.
  std::vector<double> scores(50);
  for (double& s : scores) s = rng.Uniform();
  std::vector<int> relevant;
  for (int h = 0; h < 50; ++h) {
    if (rng.Bernoulli(0.15)) relevant.push_back(h);
  }
  if (relevant.empty()) relevant.push_back(7);

  const auto ranked = eval::TopK(scores, 50);
  double prev_recall = 0.0;
  for (const std::size_t k : {1u, 3u, 5u, 10u, 20u, 50u}) {
    const auto m = eval::ComputeMetricsAtK(ranked, relevant, k);
    EXPECT_GE(m.precision, 0.0);
    EXPECT_LE(m.precision, 1.0);
    EXPECT_GE(m.recall, prev_recall);  // recall monotone in k
    EXPECT_LE(m.recall, 1.0);
    EXPECT_GE(m.ndcg, 0.0);
    EXPECT_LE(m.ndcg, 1.0 + 1e-12);
    // p@k * k is an integer hit count.
    const double hits = m.precision * static_cast<double>(k);
    EXPECT_NEAR(hits, std::round(hits), 1e-9);
    prev_recall = m.recall;
  }
  // Full-list recall is 1.
  EXPECT_NEAR(eval::RecallAtK(ranked, relevant, 50), 1.0, 1e-12);
}

TEST_P(MetricProperty, TopKIsSortedAndDistinct) {
  Rng rng(GetParam() + 500);
  std::vector<double> scores(30);
  for (double& s : scores) s = rng.Uniform();
  const auto ranked = eval::TopK(scores, 10);
  ASSERT_EQ(ranked.size(), 10u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(scores[ranked[i - 1]], scores[ranked[i]]);
    for (std::size_t j = 0; j < i; ++j) EXPECT_NE(ranked[i], ranked[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty,
                         testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --------------------------------------------------------------------------
// Loss invariants over random instances
// --------------------------------------------------------------------------

class LossProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(LossProperty, WeightedMseIsNonNegativeAndZeroAtTarget) {
  Rng rng(GetParam());
  const Matrix targets = Matrix::RandomUniform(4, 6, 0.0, 1.0, &rng)
                             .Map([](double v) { return v > 0.7 ? 1.0 : 0.0; });
  std::vector<double> weights(6);
  for (double& w : weights) w = rng.Uniform(0.5, 5.0);

  auto scores = MakeVariable(Matrix::RandomNormal(4, 6, 0.0, 1.0, &rng), true);
  EXPECT_GE(nn::WeightedMseLoss(scores, targets, weights)->value()(0, 0), 0.0);

  auto perfect = MakeVariable(targets, true);
  EXPECT_NEAR(nn::WeightedMseLoss(perfect, targets, weights)->value()(0, 0), 0.0,
              1e-15);
}

TEST_P(LossProperty, BprLossPositiveAndShrinksWithGap) {
  Rng rng(GetParam() + 100);
  auto scores = MakeVariable(Matrix::RandomNormal(3, 8, 0.0, 1.0, &rng), true);
  std::vector<nn::BprTriple> triples{{0, 1, 2}, {1, 3, 4}, {2, 5, 6}};
  const double base = nn::BprLoss(scores, triples)->value()(0, 0);
  EXPECT_GT(base, 0.0);
  // Boosting every positive must reduce the loss.
  for (const auto& t : triples) scores->mutable_value()(t.row, t.positive) += 2.0;
  EXPECT_LT(nn::BprLoss(scores, triples)->value()(0, 0), base);
}

TEST_P(LossProperty, InverseFrequencyWeightsInvariants) {
  Rng rng(GetParam() + 200);
  std::vector<std::size_t> freq(20);
  for (auto& f : freq) f = static_cast<std::size_t>(rng.UniformInt(0, 50));
  const auto weights = nn::InverseFrequencyWeights(freq);
  std::size_t max_freq = 0;
  for (std::size_t f : freq) max_freq = std::max(max_freq, f);
  for (std::size_t i = 0; i < freq.size(); ++i) {
    EXPECT_GE(weights[i], 1.0 - 1e-12);
    if (freq[i] == max_freq && max_freq > 0) {
      EXPECT_NEAR(weights[i], 1.0, 1e-12);  // most frequent herb has weight 1
    }
    // Rarer herbs never get smaller weights.
    for (std::size_t j = 0; j < freq.size(); ++j) {
      if (freq[i] > 0 && freq[j] > 0 && freq[i] <= freq[j]) {
        EXPECT_GE(weights[i] + 1e-12, weights[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossProperty, testing::Values(3, 6, 9, 12, 15));

// --------------------------------------------------------------------------
// CSR round-trip property
// --------------------------------------------------------------------------

class CsrProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrProperty, DenseSparseDenseRoundTrip) {
  Rng rng(GetParam());
  Matrix dense = Matrix::RandomNormal(10, 7, 0.0, 1.0, &rng);
  dense.Apply([](double v) { return std::fabs(v) < 1.0 ? 0.0 : v; });
  const auto sparse = graph::CsrMatrix::FromDense(dense);
  EXPECT_LT(sparse.ToDense().MaxAbsDiff(dense), 1e-15);
  EXPECT_LT(sparse.Transpose().Transpose().ToDense().MaxAbsDiff(dense), 1e-15);
}

TEST_P(CsrProperty, RowNormalizedIsStochasticWhereNonEmpty) {
  Rng rng(GetParam() + 50);
  Matrix dense = Matrix::RandomUniform(8, 8, 0.0, 1.0, &rng)
                     .Map([](double v) { return v > 0.6 ? 1.0 : 0.0; });
  const auto sparse = graph::CsrMatrix::FromDense(dense);
  const auto sums = sparse.RowNormalized().RowSums();
  for (std::size_t r = 0; r < 8; ++r) {
    if (sparse.RowNnz(r) > 0) {
      EXPECT_NEAR(sums[r], 1.0, 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(sums[r], 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrProperty, testing::Values(7, 14, 28, 56));

// --------------------------------------------------------------------------
// Corpus IO round-trip over random corpora
// --------------------------------------------------------------------------

class CorpusIoProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CorpusIoProperty, SerializeParseRoundTripPreservesEverything) {
  Rng rng(GetParam());
  data::Corpus corpus(data::Vocabulary::Synthetic(20, "s"),
                      data::Vocabulary::Synthetic(30, "h"), {});
  const int n = static_cast<int>(rng.UniformInt(1, 40));
  for (int i = 0; i < n; ++i) {
    data::Prescription p;
    const int n_s = static_cast<int>(rng.UniformInt(1, 6));
    const int n_h = static_cast<int>(rng.UniformInt(1, 8));
    for (int j = 0; j < n_s; ++j) {
      p.symptoms.push_back(static_cast<int>(rng.UniformInt(0, 19)));
    }
    for (int j = 0; j < n_h; ++j) {
      p.herbs.push_back(static_cast<int>(rng.UniformInt(0, 29)));
    }
    ASSERT_TRUE(corpus.Add(std::move(p)).ok());
  }

  // Round-trip against the original vocabularies: ids must be identical.
  auto restored =
      data::ParseCorpus(data::SerializeCorpus(corpus), &corpus);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(restored->at(i), corpus.at(i));
  }
  EXPECT_EQ(restored->HerbFrequencies(), corpus.HerbFrequencies());
  EXPECT_EQ(restored->SymptomFrequencies(), corpus.SymptomFrequencies());
}

TEST_P(CorpusIoProperty, FreeParseIsNameEquivalent) {
  Rng rng(GetParam() + 77);
  data::Corpus corpus(data::Vocabulary::Synthetic(10, "s"),
                      data::Vocabulary::Synthetic(12, "h"), {});
  for (int i = 0; i < 15; ++i) {
    data::Prescription p;
    p.symptoms = {static_cast<int>(rng.UniformInt(0, 9))};
    p.herbs = {static_cast<int>(rng.UniformInt(0, 11)),
               static_cast<int>(rng.UniformInt(0, 11))};
    ASSERT_TRUE(corpus.Add(std::move(p)).ok());
  }
  // Parsing without fixed vocabularies renumbers ids (and renormalisation
  // may reorder members), but the *name set* of every prescription must
  // survive.
  auto restored = data::ParseCorpus(data::SerializeCorpus(corpus));
  ASSERT_TRUE(restored.ok());
  auto name_set = [](const data::Corpus& c, const std::vector<int>& herbs) {
    std::set<std::string> names;
    for (int h : herbs) names.insert(c.herb_vocab().Name(h));
    return names;
  };
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(name_set(corpus, corpus.at(i).herbs),
              name_set(*restored, restored->at(i).herbs));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusIoProperty, testing::Values(2, 4, 8, 16, 32));

// --------------------------------------------------------------------------
// Checkpoint round-trip over random shapes
// --------------------------------------------------------------------------

class CheckpointProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointProperty, InferenceCheckpointSurvivesSerialization) {
  Rng rng(GetParam());
  core::InferenceCheckpoint ckpt;
  ckpt.model_name = "prop";
  const auto rows_s = static_cast<std::size_t>(rng.UniformInt(1, 12));
  const auto rows_h = static_cast<std::size_t>(rng.UniformInt(1, 12));
  const auto dim = static_cast<std::size_t>(rng.UniformInt(1, 9));
  ckpt.symptom_embeddings = Matrix::RandomNormal(rows_s, dim, 0.0, 2.0, &rng);
  ckpt.herb_embeddings = Matrix::RandomNormal(rows_h, dim, 0.0, 2.0, &rng);
  if (rng.Bernoulli(0.5)) {
    ckpt.has_si_mlp = true;
    ckpt.si_weight = Matrix::RandomNormal(dim, dim, 0.0, 1.0, &rng);
    ckpt.si_bias = Matrix::RandomNormal(1, dim, 0.0, 1.0, &rng);
  }
  const std::string path = testing::TempDir() + "/smgcn_prop_" +
                           std::to_string(GetParam()) + ".ckpt";
  ASSERT_TRUE(core::SaveInferenceCheckpoint(ckpt, path).ok());
  auto restored = core::LoadInferenceCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->symptom_embeddings, ckpt.symptom_embeddings);
  EXPECT_EQ(restored->herb_embeddings, ckpt.herb_embeddings);
  EXPECT_EQ(restored->has_si_mlp, ckpt.has_si_mlp);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointProperty,
                         testing::Values(10, 20, 30, 40, 50, 60));

}  // namespace
}  // namespace smgcn
