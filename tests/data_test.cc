// Unit tests for src/data: vocabulary, prescriptions, corpus IO, splitting
// and the synthetic TCM generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/data/corpus_io.h"
#include "src/data/prescription.h"
#include "src/data/split.h"
#include "src/data/tcm_generator.h"
#include "src/data/vocabulary.h"

namespace smgcn {
namespace data {
namespace {

// --------------------------------------------------------------------------
// Vocabulary
// --------------------------------------------------------------------------

TEST(VocabularyTest, GetOrAddAssignsSequentialIds) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("a"), 0);
  EXPECT_EQ(v.GetOrAdd("b"), 1);
  EXPECT_EQ(v.GetOrAdd("a"), 0);  // idempotent
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, AddRejectsDuplicates) {
  Vocabulary v;
  ASSERT_TRUE(v.Add("x").ok());
  EXPECT_EQ(v.Add("x").status().code(), StatusCode::kAlreadyExists);
}

TEST(VocabularyTest, LookupAndName) {
  Vocabulary v;
  v.GetOrAdd("ginseng");
  EXPECT_EQ(*v.Lookup("ginseng"), 0);
  EXPECT_EQ(v.Lookup("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.Name(0), "ginseng");
  EXPECT_TRUE(v.Contains("ginseng"));
  EXPECT_FALSE(v.Contains("nope"));
  EXPECT_TRUE(v.ContainsId(0));
  EXPECT_FALSE(v.ContainsId(1));
  EXPECT_FALSE(v.ContainsId(-1));
}

TEST(VocabularyTest, SyntheticNames) {
  const Vocabulary v = Vocabulary::Synthetic(3, "herb_");
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.Name(2), "herb_2");
  EXPECT_EQ(*v.Lookup("herb_0"), 0);
}

// --------------------------------------------------------------------------
// Prescription / Corpus
// --------------------------------------------------------------------------

TEST(PrescriptionTest, NormalizeSortsAndDedups) {
  Prescription p{{3, 1, 3, 2}, {5, 5, 0}};
  NormalizePrescription(&p);
  EXPECT_EQ(p.symptoms, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(p.herbs, (std::vector<int>{0, 5}));
}

Corpus TinyCorpus() {
  Corpus corpus(Vocabulary::Synthetic(4, "s"), Vocabulary::Synthetic(5, "h"), {});
  EXPECT_TRUE(corpus.Add({{0, 1}, {0, 2}}).ok());
  EXPECT_TRUE(corpus.Add({{1, 2}, {2, 3}}).ok());
  EXPECT_TRUE(corpus.Add({{0}, {0}}).ok());
  return corpus;
}

TEST(CorpusTest, BasicAccessors) {
  const Corpus corpus = TinyCorpus();
  EXPECT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.num_symptoms(), 4u);
  EXPECT_EQ(corpus.num_herbs(), 5u);
  EXPECT_EQ(corpus.at(1).herbs, (std::vector<int>{2, 3}));
  EXPECT_FALSE(corpus.empty());
}

TEST(CorpusTest, AddValidatesIdsAndEmptiness) {
  Corpus corpus(Vocabulary::Synthetic(2, "s"), Vocabulary::Synthetic(2, "h"), {});
  EXPECT_EQ(corpus.Add({{}, {0}}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(corpus.Add({{0}, {}}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(corpus.Add({{5}, {0}}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(corpus.Add({{0}, {-1}}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(corpus.size(), 0u);
}

TEST(CorpusTest, FrequenciesCountSetMembership) {
  const Corpus corpus = TinyCorpus();
  const auto herb_freq = corpus.HerbFrequencies();
  EXPECT_EQ(herb_freq, (std::vector<std::size_t>{2, 0, 2, 1, 0}));
  const auto symptom_freq = corpus.SymptomFrequencies();
  EXPECT_EQ(symptom_freq, (std::vector<std::size_t>{2, 2, 1, 0}));
}

TEST(CorpusTest, MeanSetSizesAndDistinctCounts) {
  const Corpus corpus = TinyCorpus();
  EXPECT_NEAR(corpus.MeanSymptomSetSize(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(corpus.MeanHerbSetSize(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(corpus.NumDistinctSymptomsUsed(), 3u);
  EXPECT_EQ(corpus.NumDistinctHerbsUsed(), 3u);
  EXPECT_DOUBLE_EQ(Corpus().MeanHerbSetSize(), 0.0);
}

// --------------------------------------------------------------------------
// Corpus IO
// --------------------------------------------------------------------------

TEST(CorpusIoTest, ParseBasicFile) {
  const std::string text =
      "# a comment\n"
      "\n"
      "s_a s_b\th_x h_y\n"
      "s_b\th_y\n";
  auto corpus = ParseCorpus(text);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 2u);
  EXPECT_EQ(corpus->num_symptoms(), 2u);
  EXPECT_EQ(corpus->num_herbs(), 2u);
  EXPECT_EQ(corpus->at(0).symptoms, (std::vector<int>{0, 1}));
  EXPECT_EQ(corpus->at(1).symptoms, (std::vector<int>{1}));
}

TEST(CorpusIoTest, SerializeRoundTrip) {
  const Corpus corpus = TinyCorpus();
  auto restored = ParseCorpus(SerializeCorpus(corpus));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    // Names are preserved; ids may be renumbered by first-seen order, so
    // compare through names.
    const auto& orig = corpus.at(i);
    const auto& got = restored->at(i);
    ASSERT_EQ(orig.symptoms.size(), got.symptoms.size());
    for (std::size_t j = 0; j < orig.symptoms.size(); ++j) {
      EXPECT_EQ(corpus.symptom_vocab().Name(orig.symptoms[j]),
                restored->symptom_vocab().Name(got.symptoms[j]));
    }
  }
}

TEST(CorpusIoTest, FixedVocabKeepsIdsAligned) {
  const Corpus base = TinyCorpus();
  auto parsed = ParseCorpus("s3 s0\th4\n", &base);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at(0).symptoms, (std::vector<int>{0, 3}));
  EXPECT_EQ(parsed->at(0).herbs, (std::vector<int>{4}));
  EXPECT_EQ(parsed->num_symptoms(), base.num_symptoms());
}

TEST(CorpusIoTest, FixedVocabRejectsUnknownNames) {
  const Corpus base = TinyCorpus();
  EXPECT_EQ(ParseCorpus("unknown\th0\n", &base).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCorpus("s0\tunknown\n", &base).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CorpusIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseCorpus("no-tab-here\n").ok());
  EXPECT_FALSE(ParseCorpus("a\tb\tc\n").ok());
  EXPECT_FALSE(ParseCorpus("\th0\n").ok());  // empty symptom field
  EXPECT_FALSE(ParseCorpus("s0\t\n").ok());  // empty herb field
}

TEST(CorpusIoTest, ErrorMessagesIncludeLineNumbers) {
  const auto status = ParseCorpus("s0\th0\nbroken line\n").status();
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(CorpusIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/smgcn_corpus_test.tsv";
  const Corpus corpus = TinyCorpus();
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  auto restored = LoadCorpus(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), corpus.size());
  EXPECT_EQ(LoadCorpus("/no/such/corpus.tsv").status().code(),
            StatusCode::kIoError);
}

// --------------------------------------------------------------------------
// Split
// --------------------------------------------------------------------------

Corpus MediumCorpus(std::size_t n) {
  Corpus corpus(Vocabulary::Synthetic(10, "s"), Vocabulary::Synthetic(10, "h"), {});
  Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    Prescription p;
    p.symptoms = {static_cast<int>(rng.UniformInt(0, 9))};
    p.herbs = {static_cast<int>(rng.UniformInt(0, 9))};
    EXPECT_TRUE(corpus.Add(std::move(p)).ok());
  }
  return corpus;
}

TEST(SplitTest, PartitionsWithRequestedFraction) {
  const Corpus corpus = MediumCorpus(100);
  Rng rng(1);
  auto split = SplitCorpus(corpus, 0.87, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 87u);
  EXPECT_EQ(split->test.size(), 13u);
  // Vocabularies are shared.
  EXPECT_EQ(split->train.num_symptoms(), corpus.num_symptoms());
  EXPECT_EQ(split->test.num_herbs(), corpus.num_herbs());
}

TEST(SplitTest, DeterministicGivenSeed) {
  const Corpus corpus = MediumCorpus(50);
  Rng rng1(7), rng2(7);
  auto a = SplitCorpus(corpus, 0.8, &rng1);
  auto b = SplitCorpus(corpus, 0.8, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->test.size(); ++i) {
    EXPECT_EQ(a->test.at(i), b->test.at(i));
  }
}

TEST(SplitTest, InvalidFractionRejected) {
  const Corpus corpus = MediumCorpus(10);
  Rng rng(1);
  EXPECT_FALSE(SplitCorpus(corpus, 0.0, &rng).ok());
  EXPECT_FALSE(SplitCorpus(corpus, 1.0, &rng).ok());
  EXPECT_FALSE(SplitCorpus(corpus, -0.5, &rng).ok());
}

TEST(SplitTest, TinyCorpusRejected) {
  Corpus corpus(Vocabulary::Synthetic(1, "s"), Vocabulary::Synthetic(1, "h"), {});
  ASSERT_TRUE(corpus.Add({{0}, {0}}).ok());
  Rng rng(1);
  EXPECT_EQ(SplitCorpus(corpus, 0.5, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SplitTest, ExtremeFractionStillLeavesBothSidesNonEmpty) {
  const Corpus corpus = MediumCorpus(10);
  Rng rng(3);
  auto split = SplitCorpus(corpus, 0.999, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_GE(split->test.size(), 1u);
  EXPECT_GE(split->train.size(), 1u);
}

// --------------------------------------------------------------------------
// TcmGenerator
// --------------------------------------------------------------------------

TcmGeneratorConfig SmallGenConfig() {
  TcmGeneratorConfig cfg;
  cfg.num_symptoms = 40;
  cfg.num_herbs = 60;
  cfg.num_syndromes = 6;
  cfg.num_prescriptions = 300;
  cfg.symptom_pool_size = 8;
  cfg.herb_pool_size = 10;
  return cfg;
}

TEST(TcmGeneratorTest, ConfigValidation) {
  EXPECT_TRUE(SmallGenConfig().Validate().ok());
  auto bad = SmallGenConfig();
  bad.num_symptoms = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallGenConfig();
  bad.symptom_pool_size = 1000;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallGenConfig();
  bad.min_herbs = 5;
  bad.max_herbs = 3;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallGenConfig();
  bad.second_syndrome_prob = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallGenConfig();
  bad.num_base_herbs = 10000;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(TcmGeneratorTest, GeneratesRequestedCount) {
  TcmGenerator gen(SmallGenConfig());
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 300u);
  EXPECT_EQ(corpus->num_symptoms(), 40u);
  EXPECT_EQ(corpus->num_herbs(), 60u);
}

TEST(TcmGeneratorTest, SetSizesWithinConfiguredBounds) {
  const auto cfg = SmallGenConfig();
  TcmGenerator gen(cfg);
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());
  for (const Prescription& p : corpus->prescriptions()) {
    EXPECT_GE(static_cast<int>(p.symptoms.size()), 1);
    // +1 for the possible noise symptom.
    EXPECT_LE(static_cast<int>(p.symptoms.size()), cfg.max_symptoms + 1);
    EXPECT_FALSE(p.herbs.empty());
    for (int s : p.symptoms) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, static_cast<int>(cfg.num_symptoms));
    }
    for (int h : p.herbs) {
      EXPECT_GE(h, 0);
      EXPECT_LT(h, static_cast<int>(cfg.num_herbs));
    }
  }
}

TEST(TcmGeneratorTest, DeterministicGivenSeed) {
  TcmGenerator a(SmallGenConfig()), b(SmallGenConfig());
  auto ca = a.Generate();
  auto cb = b.Generate();
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  ASSERT_EQ(ca->size(), cb->size());
  for (std::size_t i = 0; i < ca->size(); ++i) EXPECT_EQ(ca->at(i), cb->at(i));
}

TEST(TcmGeneratorTest, DifferentSeedsDiffer) {
  auto cfg = SmallGenConfig();
  TcmGenerator a(cfg);
  cfg.seed += 1;
  TcmGenerator b(cfg);
  auto ca = a.Generate();
  auto cb = b.Generate();
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  bool any_diff = false;
  for (std::size_t i = 0; i < ca->size() && !any_diff; ++i) {
    any_diff = !(ca->at(i) == cb->at(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(TcmGeneratorTest, HerbFrequenciesAreSkewed) {
  // Reproduces the imbalance of paper Fig. 5: the most frequent herb should
  // dominate the median herb by a large factor.
  TcmGenerator gen(SmallGenConfig());
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());
  auto freq = corpus->HerbFrequencies();
  std::sort(freq.begin(), freq.end(), std::greater<>());
  ASSERT_GT(freq[0], 0u);
  const double top = static_cast<double>(freq[0]);
  const double median = static_cast<double>(freq[freq.size() / 2]);
  EXPECT_GT(top, 4.0 * std::max(1.0, median));
}

TEST(TcmGeneratorTest, GroundTruthShapesMatchConfig) {
  const auto cfg = SmallGenConfig();
  TcmGenerator gen(cfg);
  ASSERT_TRUE(gen.Generate().ok());
  const SyndromeGroundTruth& gt = gen.ground_truth();
  ASSERT_EQ(gt.syndrome_symptoms.size(), cfg.num_syndromes);
  ASSERT_EQ(gt.syndrome_herbs.size(), cfg.num_syndromes);
  for (std::size_t k = 0; k < cfg.num_syndromes; ++k) {
    EXPECT_EQ(gt.syndrome_symptoms[k].size(), cfg.symptom_pool_size);
    EXPECT_EQ(gt.syndrome_herbs[k].size(), cfg.herb_pool_size);
    const std::set<int> unique(gt.syndrome_symptoms[k].begin(),
                               gt.syndrome_symptoms[k].end());
    EXPECT_EQ(unique.size(), cfg.symptom_pool_size);
  }
  EXPECT_EQ(gt.base_herbs.size(), cfg.num_base_herbs);
  // One adjustment set per unordered syndrome pair.
  EXPECT_EQ(gt.pair_adjustment_herbs.size(),
            cfg.num_syndromes * (cfg.num_syndromes - 1) / 2);
}

TEST(TcmGeneratorTest, SymptomsCoOccurWithinSyndromes) {
  // Symptoms from the same syndrome pool must co-occur far more often than
  // random symptom pairs — the signal the SS synergy graph encodes.
  auto cfg = SmallGenConfig();
  cfg.num_prescriptions = 600;
  TcmGenerator gen(cfg);
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());
  const auto& gt = gen.ground_truth();

  // Count co-occurrences of the first syndrome's first two pool symptoms vs
  // a cross-syndrome pair.
  auto count_pair = [&](int a, int b) {
    std::size_t count = 0;
    for (const Prescription& p : corpus->prescriptions()) {
      const bool has_a = std::binary_search(p.symptoms.begin(), p.symptoms.end(), a);
      const bool has_b = std::binary_search(p.symptoms.begin(), p.symptoms.end(), b);
      if (has_a && has_b) ++count;
    }
    return count;
  };
  const auto& pool0 = gt.syndrome_symptoms[0];
  const std::size_t within = count_pair(pool0[0], pool0[1]);
  // A pair picked from two different pools that do not share members.
  int cross_a = pool0[0];
  int cross_b = -1;
  for (int candidate : gt.syndrome_symptoms[3]) {
    if (std::find(pool0.begin(), pool0.end(), candidate) == pool0.end()) {
      cross_b = candidate;
      break;
    }
  }
  ASSERT_NE(cross_b, -1);
  EXPECT_GT(within + 1, 2 * (count_pair(cross_a, cross_b) + 1));
}

TEST(TcmGeneratorTest, BaseHerbsAreNearUniversal) {
  TcmGenerator gen(SmallGenConfig());
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());
  const auto freq = corpus->HerbFrequencies();
  for (int h : gen.ground_truth().base_herbs) {
    // Each base herb appears with probability ~base_herb_prob per
    // prescription.
    EXPECT_GT(freq[static_cast<std::size_t>(h)], corpus->size() / 4);
  }
}

TEST(TcmGeneratorTest, CompanionHerbsPairAndCoOccur) {
  auto cfg = SmallGenConfig();
  cfg.companion_prob = 0.7;
  cfg.num_prescriptions = 500;
  TcmGenerator gen(cfg);
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());
  const auto& companion = gen.ground_truth().companion_of;
  ASSERT_EQ(companion.size(), cfg.num_herbs);

  // The matching is symmetric and excludes base herbs.
  std::size_t paired = 0;
  for (std::size_t h = 0; h < companion.size(); ++h) {
    if (companion[h] < 0) continue;
    ++paired;
    EXPECT_EQ(companion[static_cast<std::size_t>(companion[h])],
              static_cast<int>(h));
    EXPECT_GE(h, cfg.num_base_herbs);
  }
  EXPECT_GT(paired, cfg.num_herbs / 2);

  // A companion pair co-occurs far more often than expected by chance:
  // count conditional co-occurrence for the most frequent paired herb.
  const auto freq = corpus->HerbFrequencies();
  int probe = -1;
  std::size_t best_freq = 0;
  for (std::size_t h = cfg.num_base_herbs; h < cfg.num_herbs; ++h) {
    if (companion[h] >= 0 && freq[h] > best_freq) {
      best_freq = freq[h];
      probe = static_cast<int>(h);
    }
  }
  ASSERT_NE(probe, -1);
  ASSERT_GT(best_freq, 20u);
  const int partner = companion[static_cast<std::size_t>(probe)];
  std::size_t together = 0;
  for (const Prescription& p : corpus->prescriptions()) {
    if (std::binary_search(p.herbs.begin(), p.herbs.end(), probe) &&
        std::binary_search(p.herbs.begin(), p.herbs.end(), partner)) {
      ++together;
    }
  }
  // With companion_prob 0.7 the partner joins most prescriptions of the
  // probe herb.
  EXPECT_GT(static_cast<double>(together) / static_cast<double>(best_freq), 0.4);
}

TEST(TcmGeneratorTest, CompanionProbValidation) {
  auto cfg = SmallGenConfig();
  cfg.companion_prob = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.companion_prob = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(TcmGeneratorTest, NoCompanionsWhenDisabled) {
  TcmGenerator gen(SmallGenConfig());
  ASSERT_TRUE(gen.Generate().ok());
  EXPECT_TRUE(gen.ground_truth().companion_of.empty());
}

TEST(TcmGeneratorTest, InvalidConfigFailsGenerate) {
  auto cfg = SmallGenConfig();
  cfg.num_prescriptions = 0;
  TcmGenerator gen(cfg);
  EXPECT_FALSE(gen.Generate().ok());
}

}  // namespace
}  // namespace data
}  // namespace smgcn
