// Tests for model persistence (parameter-store snapshots, inference
// checkpoints, CheckpointRecommender) and validation-based early stopping.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "src/core/checkpoint.h"
#include "src/core/smgcn_model.h"
#include "src/nn/init.h"
#include "tests/test_util.h"

namespace smgcn {
namespace core {
namespace {

using tensor::Matrix;

TrainConfig FastTrainConfig() {
  TrainConfig train;
  train.learning_rate = 3e-3;
  train.l2_lambda = 1e-4;
  train.batch_size = 128;
  train.epochs = 10;
  train.seed = 3;
  return train;
}

ModelConfig SmallModelConfig() {
  ModelConfig model;
  model.embedding_dim = 16;
  model.layer_dims = {24, 24};
  model.thresholds = {2, 5};
  return model;
}

// --------------------------------------------------------------------------
// ParameterStore snapshots
// --------------------------------------------------------------------------

TEST(ParameterStoreIoTest, SaveLoadRoundTrip) {
  Rng rng(1);
  nn::ParameterStore store;
  store.Create("a", nn::XavierUniform(3, 4, &rng));
  store.Create("b.weight", nn::XavierUniform(2, 2, &rng));

  const std::string path = testing::TempDir() + "/smgcn_store.ckpt";
  ASSERT_TRUE(SaveParameterStore(store, path).ok());

  // A freshly initialised store with the same structure restores exactly.
  Rng rng2(99);
  nn::ParameterStore other;
  auto a = other.Create("a", nn::XavierUniform(3, 4, &rng2));
  auto b = other.Create("b.weight", nn::XavierUniform(2, 2, &rng2));
  ASSERT_TRUE(LoadParameterStoreValues(path, &other).ok());
  EXPECT_EQ(a->value(), store.parameters()[0]->value());
  EXPECT_EQ(b->value(), store.parameters()[1]->value());
}

TEST(ParameterStoreIoTest, RejectsCountMismatch) {
  nn::ParameterStore store;
  store.Create("a", Matrix(1, 1, 2.0));
  const std::string path = testing::TempDir() + "/smgcn_store2.ckpt";
  ASSERT_TRUE(SaveParameterStore(store, path).ok());

  nn::ParameterStore bigger;
  bigger.Create("a", Matrix(1, 1));
  bigger.Create("extra", Matrix(1, 1));
  EXPECT_EQ(LoadParameterStoreValues(path, &bigger).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ParameterStoreIoTest, RejectsNameAndShapeMismatch) {
  nn::ParameterStore store;
  store.Create("a", Matrix(2, 2, 1.0));
  const std::string path = testing::TempDir() + "/smgcn_store3.ckpt";
  ASSERT_TRUE(SaveParameterStore(store, path).ok());

  nn::ParameterStore renamed;
  renamed.Create("z", Matrix(2, 2));
  EXPECT_EQ(LoadParameterStoreValues(path, &renamed).code(),
            StatusCode::kNotFound);

  nn::ParameterStore reshaped;
  reshaped.Create("a", Matrix(3, 2));
  EXPECT_EQ(LoadParameterStoreValues(path, &reshaped).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ParameterStoreIoTest, LoadMissingFileFails) {
  nn::ParameterStore store;
  store.Create("a", Matrix(1, 1));
  EXPECT_EQ(LoadParameterStoreValues("/no/such/file", &store).code(),
            StatusCode::kIoError);
}

// --------------------------------------------------------------------------
// Inference checkpoints
// --------------------------------------------------------------------------

InferenceCheckpoint TinyCheckpoint(bool with_si) {
  Rng rng(5);
  InferenceCheckpoint ckpt;
  ckpt.model_name = "SMGCN";
  ckpt.symptom_embeddings = nn::XavierUniform(6, 4, &rng);
  ckpt.herb_embeddings = nn::XavierUniform(9, 4, &rng);
  if (with_si) {
    ckpt.has_si_mlp = true;
    ckpt.si_weight = nn::XavierUniform(4, 4, &rng);
    ckpt.si_bias = Matrix(1, 4, 0.1);
  }
  return ckpt;
}

TEST(InferenceCheckpointTest, ValidateCatchesInconsistencies) {
  EXPECT_TRUE(TinyCheckpoint(true).Validate().ok());
  EXPECT_TRUE(TinyCheckpoint(false).Validate().ok());

  auto bad = TinyCheckpoint(false);
  bad.herb_embeddings = Matrix(9, 5);  // width mismatch
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyCheckpoint(true);
  bad.si_weight = Matrix(3, 4);
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyCheckpoint(true);
  bad.si_bias = Matrix(2, 4);
  EXPECT_FALSE(bad.Validate().ok());

  bad = TinyCheckpoint(false);
  bad.symptom_embeddings(0, 0) = std::nan("");
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(InferenceCheckpointTest, FileRoundTrip) {
  for (const bool with_si : {false, true}) {
    const InferenceCheckpoint original = TinyCheckpoint(with_si);
    const std::string path = testing::TempDir() + "/smgcn_infer.ckpt";
    ASSERT_TRUE(SaveInferenceCheckpoint(original, path).ok());
    auto restored = LoadInferenceCheckpoint(path);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored->model_name, original.model_name);
    EXPECT_EQ(restored->has_si_mlp, original.has_si_mlp);
    EXPECT_EQ(restored->symptom_embeddings, original.symptom_embeddings);
    EXPECT_EQ(restored->herb_embeddings, original.herb_embeddings);
    if (with_si) {
      EXPECT_EQ(restored->si_weight, original.si_weight);
      EXPECT_EQ(restored->si_bias, original.si_bias);
    }
  }
}

TEST(InferenceCheckpointTest, HerbBiparRoundTripUsesV2Header) {
  Rng rng(6);
  InferenceCheckpoint original = TinyCheckpoint(true);
  original.has_herb_bipar = true;
  original.herb_bipar = nn::XavierUniform(9, 4, &rng);
  ASSERT_TRUE(original.Validate().ok());

  const std::string path = testing::TempDir() + "/smgcn_infer_v2.ckpt";
  ASSERT_TRUE(SaveInferenceCheckpoint(original, path).ok());
  {
    std::ifstream in(path);
    std::string magic;
    std::getline(in, magic);
    EXPECT_EQ(magic, "smgcn-inference-checkpoint v2");
  }
  auto restored = LoadInferenceCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored->has_herb_bipar);
  EXPECT_EQ(restored->herb_bipar, original.herb_bipar);
  EXPECT_EQ(restored->symptom_embeddings, original.symptom_embeddings);
  EXPECT_EQ(restored->herb_embeddings, original.herb_embeddings);
}

TEST(InferenceCheckpointTest, WithoutHerbBiparKeepsV1Header) {
  // Back-compat: a component-free checkpoint must stay byte-readable by
  // pre-v2 loaders, so the writer keeps the v1 magic.
  const std::string path = testing::TempDir() + "/smgcn_infer_v1.ckpt";
  ASSERT_TRUE(SaveInferenceCheckpoint(TinyCheckpoint(true), path).ok());
  std::ifstream in(path);
  std::string magic;
  std::getline(in, magic);
  EXPECT_EQ(magic, "smgcn-inference-checkpoint v1");
}

TEST(InferenceCheckpointTest, ValidateCatchesBadHerbBipar) {
  Rng rng(7);
  auto bad = TinyCheckpoint(true);
  bad.has_herb_bipar = true;
  bad.herb_bipar = nn::XavierUniform(8, 4, &rng);  // row count mismatch
  EXPECT_FALSE(bad.Validate().ok());
  bad.herb_bipar = nn::XavierUniform(9, 3, &rng);  // width mismatch
  EXPECT_FALSE(bad.Validate().ok());
  bad.herb_bipar = nn::XavierUniform(9, 4, &rng);
  EXPECT_TRUE(bad.Validate().ok());
  bad.herb_bipar(0, 0) = std::nan("");
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(InferenceCheckpointTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/smgcn_garbage.ckpt";
  {
    std::ofstream out(path);
    out << "not a checkpoint\n";
  }
  EXPECT_FALSE(LoadInferenceCheckpoint(path).ok());
  EXPECT_EQ(LoadInferenceCheckpoint("/no/such/path").status().code(),
            StatusCode::kIoError);
}

// --------------------------------------------------------------------------
// Corrupted-fixture regressions: every damaged file must fail with an
// InvalidArgument naming the offending section and line, never a generic
// parse error or (worse) a silently truncated model.
// --------------------------------------------------------------------------

// A minimal, syntactically valid checkpoint fixture (no SI MLP):
//   1: smgcn-inference-checkpoint v1
//   2: tiny
//   3: si 0
//   4: smgcn-matrix v1     (symptom embeddings)
//   5: 2 2
//   6: 1 2
//   7: 3 4
//   8: smgcn-matrix v1     (herb embeddings)
//   9: 3 2
//  10..12: data rows
std::string ValidFixture() {
  return
      "smgcn-inference-checkpoint v1\n"
      "tiny\n"
      "si 0\n"
      "smgcn-matrix v1\n"
      "2 2\n"
      "1 2\n"
      "3 4\n"
      "smgcn-matrix v1\n"
      "3 2\n"
      "0.5 0.5\n"
      "0.25 0.25\n"
      "1 1\n";
}

Status LoadFixture(const std::string& content) {
  const std::string path = testing::TempDir() + "/smgcn_fixture.ckpt";
  std::ofstream out(path);
  out << content;
  out.close();
  return LoadInferenceCheckpoint(path).status();
}

TEST(CheckpointCorruptionTest, ValidFixtureLoads) {
  EXPECT_TRUE(LoadFixture(ValidFixture()).ok());
}

TEST(CheckpointCorruptionTest, TruncatedMatrixNamesSectionAndLine) {
  // Drop the last data row of the herb matrix (line 12).
  std::string text = ValidFixture();
  text.erase(text.rfind("1 1\n"));
  const Status status = LoadFixture(text);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("herb embeddings"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("truncated at line 11"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("2 of 3"), std::string::npos);
}

TEST(CheckpointCorruptionTest, BadShapeLineNamesSectionAndLine) {
  std::string text = ValidFixture();
  text.replace(text.find("2 2"), 3, "2 x");
  const Status status = LoadFixture(text);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("symptom embeddings"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("line 5"), std::string::npos)
      << status.message();
}

TEST(CheckpointCorruptionTest, AbsurdShapeIsRejectedBeforeAllocating) {
  std::string text = ValidFixture();
  text.replace(text.find("2 2"), 3, "999999999 999999999");
  const Status status = LoadFixture(text);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("exceeds the supported size"),
            std::string::npos)
      << status.message();
}

TEST(CheckpointCorruptionTest, NonNumericValueNamesRowAndColumn) {
  std::string text = ValidFixture();
  text.replace(text.find("3 4"), 3, "3 oops");
  const Status status = LoadFixture(text);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("symptom embeddings"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("line 7"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("oops"), std::string::npos);
}

TEST(CheckpointCorruptionTest, WrongFieldCountNamesRow) {
  std::string text = ValidFixture();
  text.replace(text.find("3 4"), 3, "3 4 5");
  const Status status = LoadFixture(text);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("has 3 fields, expected 2"),
            std::string::npos)
      << status.message();
}

TEST(CheckpointCorruptionTest, MissingMatrixHeaderNamesSection) {
  std::string text = ValidFixture();
  const std::size_t second =
      text.find("smgcn-matrix v1", text.find("smgcn-matrix v1") + 1);
  text.replace(second, 15, "smgcn-matrix v9");
  const Status status = LoadFixture(text);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("herb embeddings"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("line 8"), std::string::npos)
      << status.message();
}

TEST(CheckpointCorruptionTest, BadSiFlagNamesLine) {
  std::string text = ValidFixture();
  text.replace(text.find("si 0"), 4, "si 2");
  const Status status = LoadFixture(text);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SI flag"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("line 3"), std::string::npos);
}

TEST(CheckpointCorruptionTest, EmptyModelNameIsRejected) {
  std::string text = ValidFixture();
  text.replace(text.find("tiny"), 4, "   ");
  const Status status = LoadFixture(text);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("model name"), std::string::npos)
      << status.message();
}

TEST(CheckpointCorruptionTest, TrailingGarbageIsRejected) {
  const Status status = LoadFixture(ValidFixture() + "\nleftover bytes\n");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("trailing garbage"), std::string::npos)
      << status.message();
  // Pure trailing whitespace stays legal (editors add final newlines).
  EXPECT_TRUE(LoadFixture(ValidFixture() + "\n  \n").ok());
}

TEST(CheckpointRecommenderTest, ScoresMatchOriginatingModel) {
  const auto split = testutil::SmallSplit();
  SmgcnModel model(SmallModelConfig(), FastTrainConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());

  auto checkpoint = model.ExportCheckpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  const std::string path = testing::TempDir() + "/smgcn_model.ckpt";
  ASSERT_TRUE(SaveInferenceCheckpoint(*checkpoint, path).ok());
  auto reloaded = LoadInferenceCheckpoint(path);
  ASSERT_TRUE(reloaded.ok());
  auto served = CheckpointRecommender::FromCheckpoint(*std::move(reloaded));
  ASSERT_TRUE(served.ok());

  EXPECT_EQ(served->name(), "SMGCN");
  for (const std::vector<int>& symptoms :
       {std::vector<int>{0}, std::vector<int>{1, 5, 9}, std::vector<int>{3, 4}}) {
    auto original = model.Score(symptoms);
    auto restored = served->Score(symptoms);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(original->size(), restored->size());
    for (std::size_t h = 0; h < original->size(); ++h) {
      EXPECT_NEAR((*original)[h], (*restored)[h], 1e-9);
    }
  }
}

TEST(CheckpointRecommenderTest, ContractErrors) {
  auto served = CheckpointRecommender::FromCheckpoint(TinyCheckpoint(true));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->Fit(data::Corpus()).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(served->Score({}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(served->Score({100}).status().code(), StatusCode::kInvalidArgument);
  auto scores = served->Score({0, 3});
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 9u);
}

TEST(CheckpointRecommenderTest, ExportBeforeFitFails) {
  SmgcnModel model(SmallModelConfig(), FastTrainConfig());
  EXPECT_EQ(model.ExportCheckpoint().status().code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------------------
// Early stopping
// --------------------------------------------------------------------------

TEST(EarlyStoppingTest, ValidationConfigValidation) {
  auto cfg = FastTrainConfig();
  cfg.validation_fraction = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.validation_fraction = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.validation_fraction = 0.2;
  cfg.patience = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.patience = 3;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(EarlyStoppingTest, RecordsValidationLosses) {
  const auto split = testutil::SmallSplit();
  auto train = FastTrainConfig();
  train.validation_fraction = 0.15;
  train.patience = 3;
  train.epochs = 8;
  SmgcnModel model(SmallModelConfig(), train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  const TrainSummary& summary = model.train_summary();
  EXPECT_EQ(summary.validation_losses.size(), summary.epoch_losses.size());
  EXPECT_GE(summary.best_epoch, 1u);
  EXPECT_LE(summary.best_epoch, summary.epoch_losses.size());
}

TEST(EarlyStoppingTest, StopsWhenValidationPlateausImmediately) {
  // patience 1 on a tiny budget: training either stops early or finishes;
  // in both cases the summary must be internally consistent.
  const auto split = testutil::SmallSplit();
  auto train = FastTrainConfig();
  train.validation_fraction = 0.2;
  train.patience = 1;
  train.epochs = 30;
  SmgcnModel model(SmallModelConfig(), train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  const TrainSummary& summary = model.train_summary();
  if (summary.stopped_early) {
    EXPECT_LT(summary.epoch_losses.size(), 30u);
  } else {
    EXPECT_EQ(summary.epoch_losses.size(), 30u);
  }
  // The model still serves sane scores after restoration.
  auto scores = model.Score({0, 1});
  ASSERT_TRUE(scores.ok());
  for (double v : *scores) EXPECT_TRUE(std::isfinite(v));
}

TEST(EarlyStoppingTest, WorksWithBprLoss) {
  const auto split = testutil::SmallSplit();
  auto train = FastTrainConfig();
  train.loss = LossKind::kBpr;
  train.validation_fraction = 0.2;
  train.patience = 2;
  train.epochs = 10;
  SmgcnModel model(SmallModelConfig(), train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_FALSE(model.train_summary().validation_losses.empty());
  auto scores = model.Score({0, 1});
  ASSERT_TRUE(scores.ok());
}

TEST(EarlyStoppingTest, NoValidationMeansNoEarlyStop) {
  const auto split = testutil::SmallSplit();
  auto train = FastTrainConfig();
  train.epochs = 5;
  SmgcnModel model(SmallModelConfig(), train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_TRUE(model.train_summary().validation_losses.empty());
  EXPECT_FALSE(model.train_summary().stopped_early);
  EXPECT_EQ(model.train_summary().best_epoch, 5u);
}

}  // namespace
}  // namespace core
}  // namespace smgcn
