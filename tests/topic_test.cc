// Tests for the HC-KGETM substrates (collapsed-Gibbs topic model, TransE)
// and the assembled baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "src/kg/transe.h"
#include "src/topic/hc_kgetm.h"
#include "src/topic/topic_model.h"
#include "tests/test_util.h"

namespace smgcn {
namespace topic {
namespace {

using data::Corpus;
using data::Vocabulary;

// --------------------------------------------------------------------------
// Topic model
// --------------------------------------------------------------------------

TopicModelConfig SmallTopicConfig() {
  TopicModelConfig cfg;
  cfg.num_topics = 4;
  cfg.iterations = 60;
  return cfg;
}

/// Two perfectly separated "syndromes": symptoms {0,1} always go with herbs
/// {0,1}; symptoms {2,3} with herbs {2,3}.
Corpus TwoClusterCorpus() {
  Corpus corpus(Vocabulary::Synthetic(4, "s"), Vocabulary::Synthetic(4, "h"), {});
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(corpus.Add({{0, 1}, {0, 1}}).ok());
    EXPECT_TRUE(corpus.Add({{2, 3}, {2, 3}}).ok());
  }
  return corpus;
}

TEST(TopicModelTest, ConfigValidation) {
  EXPECT_TRUE(SmallTopicConfig().Validate().ok());
  auto bad = SmallTopicConfig();
  bad.num_topics = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallTopicConfig();
  bad.alpha = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallTopicConfig();
  bad.iterations = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(TopicModelTest, RejectsEmptyCorpus) {
  PrescriptionTopicModel model(SmallTopicConfig());
  Corpus empty(Vocabulary::Synthetic(1, "s"), Vocabulary::Synthetic(1, "h"), {});
  EXPECT_EQ(model.Fit(empty).code(), StatusCode::kFailedPrecondition);
}

TEST(TopicModelTest, DistributionsAreNormalised) {
  PrescriptionTopicModel model(SmallTopicConfig());
  ASSERT_TRUE(model.Fit(TwoClusterCorpus()).ok());
  EXPECT_TRUE(model.trained());
  for (std::size_t z = 0; z < 4; ++z) {
    double sum_s = 0.0, sum_h = 0.0;
    for (std::size_t s = 0; s < 4; ++s) sum_s += model.topic_symptom()(z, s);
    for (std::size_t h = 0; h < 4; ++h) sum_h += model.topic_herb()(z, h);
    EXPECT_NEAR(sum_s, 1.0, 1e-9);
    EXPECT_NEAR(sum_h, 1.0, 1e-9);
  }
  double prior_sum = 0.0;
  for (double p : model.topic_prior()) prior_sum += p;
  EXPECT_NEAR(prior_sum, 1.0, 1e-9);
}

TEST(TopicModelTest, RecoversClusterStructure) {
  // p(h | z-of-s0) must put far more mass on herbs {0,1} than {2,3}.
  PrescriptionTopicModel model(SmallTopicConfig());
  ASSERT_TRUE(model.Fit(TwoClusterCorpus()).ok());
  const auto posterior = model.SymptomTopicPosterior();  // 4 x K
  const auto& phi_h = model.topic_herb();
  auto herb_score = [&](std::size_t symptom, std::size_t herb) {
    double score = 0.0;
    for (std::size_t z = 0; z < 4; ++z) {
      score += posterior(symptom, z) * phi_h(z, herb);
    }
    return score;
  };
  EXPECT_GT(herb_score(0, 0) + herb_score(0, 1),
            3.0 * (herb_score(0, 2) + herb_score(0, 3)));
  EXPECT_GT(herb_score(2, 2) + herb_score(2, 3),
            3.0 * (herb_score(2, 0) + herb_score(2, 1)));
}

TEST(TopicModelTest, PosteriorRowsSumToOne) {
  PrescriptionTopicModel model(SmallTopicConfig());
  ASSERT_TRUE(model.Fit(TwoClusterCorpus()).ok());
  const auto posterior = model.SymptomTopicPosterior();
  for (std::size_t s = 0; s < posterior.rows(); ++s) {
    double sum = 0.0;
    for (std::size_t z = 0; z < posterior.cols(); ++z) sum += posterior(s, z);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(TopicModelTest, DeterministicGivenSeed) {
  PrescriptionTopicModel a(SmallTopicConfig()), b(SmallTopicConfig());
  const Corpus corpus = TwoClusterCorpus();
  ASSERT_TRUE(a.Fit(corpus).ok());
  ASSERT_TRUE(b.Fit(corpus).ok());
  EXPECT_LT(a.topic_herb().MaxAbsDiff(b.topic_herb()), 1e-15);
}

// --------------------------------------------------------------------------
// TransE
// --------------------------------------------------------------------------

kg::TranseConfig SmallTranseConfig() {
  kg::TranseConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 150;
  cfg.learning_rate = 0.02;
  return cfg;
}

TEST(TranseTest, ConfigValidation) {
  EXPECT_TRUE(SmallTranseConfig().Validate().ok());
  auto bad = SmallTranseConfig();
  bad.dim = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallTranseConfig();
  bad.margin = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(TranseTest, RejectsBadTriples) {
  kg::TransE model(SmallTranseConfig());
  EXPECT_EQ(model.Fit(3, 1, {}).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(model.Fit(3, 1, {{5, 0, 0}}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(model.Fit(3, 1, {{0, 2, 1}}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(model.Fit(0, 1, {{0, 0, 0}}).code(), StatusCode::kInvalidArgument);
}

TEST(TranseTest, LearnsToRankTrueTriplesHigher) {
  // Bipartite structure: entities 0-3 relate to 4-7 pairwise via relation 0.
  std::vector<kg::Triple> triples;
  for (int i = 0; i < 4; ++i) {
    triples.push_back({i, 0, 4 + i});
  }
  kg::TransE model(SmallTranseConfig());
  ASSERT_TRUE(model.Fit(8, 1, triples).ok());
  EXPECT_TRUE(model.trained());
  // Each true tail outranks the mean of the false tails.
  for (int i = 0; i < 4; ++i) {
    const double true_score = model.Score(i, 0, 4 + i);
    double false_mean = 0.0;
    for (int j = 0; j < 4; ++j) {
      if (j != i) false_mean += model.Score(i, 0, 4 + j);
    }
    false_mean /= 3.0;
    EXPECT_GT(true_score, false_mean) << "entity " << i;
  }
}

TEST(TranseTest, EntityNormsBounded) {
  std::vector<kg::Triple> triples{{0, 0, 1}, {1, 0, 2}, {2, 0, 0}};
  kg::TransE model(SmallTranseConfig());
  ASSERT_TRUE(model.Fit(3, 1, triples).ok());
  const auto& e = model.entity_embeddings();
  for (std::size_t r = 0; r < e.rows(); ++r) {
    double norm = 0.0;
    for (std::size_t c = 0; c < e.cols(); ++c) norm += e(r, c) * e(r, c);
    // Rows are projected into the unit ball at each epoch start; a few SGD
    // updates after the projection may push slightly above 1.
    EXPECT_LT(std::sqrt(norm), 1.5);
  }
}

TEST(TranseTest, DeterministicGivenSeed) {
  std::vector<kg::Triple> triples{{0, 0, 1}, {1, 0, 2}};
  kg::TransE a(SmallTranseConfig()), b(SmallTranseConfig());
  ASSERT_TRUE(a.Fit(3, 1, triples).ok());
  ASSERT_TRUE(b.Fit(3, 1, triples).ok());
  EXPECT_LT(a.entity_embeddings().MaxAbsDiff(b.entity_embeddings()), 1e-15);
}

// --------------------------------------------------------------------------
// HC-KGETM
// --------------------------------------------------------------------------

HcKgetmConfig SmallHcConfig() {
  HcKgetmConfig cfg;
  cfg.topic = SmallTopicConfig();
  cfg.topic.num_topics = 8;
  cfg.transe = SmallTranseConfig();
  cfg.transe.epochs = 40;
  cfg.thresholds = {2, 5};
  return cfg;
}

TEST(HcKgetmTest, ConfigValidation) {
  EXPECT_TRUE(SmallHcConfig().Validate().ok());
  auto bad = SmallHcConfig();
  bad.kg_weight = -0.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallHcConfig();
  bad.thresholds.xh = -1;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(HcKgetmTest, ScoreBeforeFitFails) {
  HcKgetm model(SmallHcConfig());
  EXPECT_EQ(model.Score({0}).status().code(), StatusCode::kFailedPrecondition);
}

TEST(HcKgetmTest, TrainsAndScores) {
  const auto split = testutil::SmallSplit();
  HcKgetm model(SmallHcConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_EQ(model.name(), "HC-KGETM");
  auto scores = model.Score({0, 1});
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), split.train.num_herbs());
  EXPECT_EQ(model.Score({}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model.Score({-1}).status().code(), StatusCode::kInvalidArgument);
}

TEST(HcKgetmTest, BeatsRandomOnClusteredData) {
  const auto split = testutil::SmallSplit();
  HcKgetm model(SmallHcConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());
  auto report = eval::Evaluate(model.AsScorer(), split.test);
  ASSERT_TRUE(report.ok());
  // Random recall@20 would be about 20 / num_herbs = 0.25 here; the topic
  // model must do clearly better.
  EXPECT_GT(report->At(20).recall, 0.3);
}

TEST(HcKgetmTest, ScoreIsAdditiveOverSymptoms) {
  // By construction the model sums per-symptom scores — verify the
  // documented no-set-fusion behaviour.
  const auto split = testutil::SmallSplit();
  HcKgetm model(SmallHcConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());
  auto s0 = model.Score({0});
  auto s1 = model.Score({1});
  auto s01 = model.Score({0, 1});
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s01.ok());
  for (std::size_t h = 0; h < s01->size(); ++h) {
    EXPECT_NEAR((*s01)[h], (*s0)[h] + (*s1)[h], 1e-9);
  }
}

}  // namespace
}  // namespace topic
}  // namespace smgcn
