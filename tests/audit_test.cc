// Tests for src/audit: the ExactResidual anchor and the f64 reference
// attribution (AttributeFromCheckpoint). The serving-side parity across
// precisions, paths and thread counts lives in serve_test.cc; the wire
// round trip in net_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/audit/audit.h"
#include "src/core/checkpoint.h"
#include "src/tensor/matrix.h"
#include "src/util/random.h"

namespace smgcn {
namespace audit {
namespace {

core::InferenceCheckpoint MakeCheckpoint(bool with_si_mlp,
                                         bool with_herb_bipar) {
  Rng rng(907);
  core::InferenceCheckpoint ckpt;
  ckpt.model_name = "audit-test";
  ckpt.symptom_embeddings = tensor::Matrix::RandomNormal(24, 8, 0.0, 1.0, &rng);
  ckpt.herb_embeddings = tensor::Matrix::RandomNormal(40, 8, 0.0, 1.0, &rng);
  ckpt.has_si_mlp = with_si_mlp;
  if (with_si_mlp) {
    ckpt.si_weight = tensor::Matrix::RandomNormal(8, 8, 0.0, 0.5, &rng);
    ckpt.si_bias = tensor::Matrix::RandomNormal(1, 8, 0.0, 0.5, &rng);
  }
  if (with_herb_bipar) {
    ckpt.has_herb_bipar = true;
    ckpt.herb_bipar = tensor::Matrix::RandomNormal(40, 8, 0.0, 0.5, &rng);
  }
  return ckpt;
}

// --------------------------------------------------------------------------
// ExactResidual
// --------------------------------------------------------------------------

// No single residual double can reach every target: under cancellation the
// residual's ulp grid steps over the target, and a sub-ulp residue of
// exactly half an ulp makes round-ties-to-even land every candidate on the
// even neighbor of an odd-mantissa target. The contract is therefore: when
// `exact` is reported the sum reconstructs bit-exactly; when it is not, no
// exact residual exists and the returned one lands within 1 ulp of the
// larger operand. Component-style pairs (|partial| <= |target|, the shape
// of a served top-k decomposition) are exact in the overwhelming majority.
TEST(ExactResidualTest, ExactOrWithinOneUlp) {
  Rng rng(11);
  int component_exact = 0;
  constexpr int kTrials = 1000;
  for (int i = 0; i < kTrials; ++i) {
    // Component-style: the partial is a same-sign fraction of the target.
    double target = rng.Normal(0.0, 10.0);
    double partial = target * rng.Uniform(0.0, 1.0);
    bool exact = false;
    double r = ExactResidual(target, partial, &exact);
    if (exact) {
      ++component_exact;
      EXPECT_EQ(partial + r, target);
    } else {
      EXPECT_LE(std::abs((partial + r) - target), 3e-16 * std::abs(target))
          << "target=" << target << " partial=" << partial;
    }
    // Fully independent pair: cancellation included.
    target = rng.Normal(0.0, 10.0);
    partial = rng.Normal(0.0, 10.0);
    r = ExactResidual(target, partial, &exact);
    const double scale = std::max(std::abs(target), std::abs(partial));
    if (exact) {
      EXPECT_EQ(partial + r, target);
    } else {
      EXPECT_LE(std::abs((partial + r) - target), 3e-16 * scale)
          << "target=" << target << " partial=" << partial;
    }
  }
  // Measured rate is ~98%; anything below 90% means the walk regressed.
  EXPECT_GT(component_exact, kTrials * 9 / 10);
}

TEST(ExactResidualTest, ZeroPartialReturnsTarget) {
  bool exact = false;
  EXPECT_EQ(ExactResidual(1.25, 0.0, &exact), 1.25);
  EXPECT_TRUE(exact);
  EXPECT_EQ(ExactResidual(0.0, 0.0, &exact), 0.0);
  EXPECT_TRUE(exact);
}

TEST(ExactResidualTest, NullExactPointerIsAllowed) {
  const double r = ExactResidual(3.5, 1.25, nullptr);
  EXPECT_EQ(1.25 + r, 3.5);
}

TEST(ExactResidualTest, PathologicalMagnitudeGapClearsExactFlag) {
  // ulp(1e300) is astronomically larger than 1.0: no double r satisfies
  // 1e300 + r == 1.0 going through fl(), so the flag must drop instead of
  // looping forever.
  bool exact = true;
  const double r = ExactResidual(1.0, 1e300, &exact);
  EXPECT_FALSE(exact);
  EXPECT_TRUE(std::isfinite(r));
}

// --------------------------------------------------------------------------
// AttributeFromCheckpoint
// --------------------------------------------------------------------------

TEST(AttributeTest, ScoresMatchCheckpointRecommenderBitExactly) {
  auto ckpt = MakeCheckpoint(/*with_si_mlp=*/true, /*with_herb_bipar=*/true);
  auto reference = core::CheckpointRecommender::FromCheckpoint(ckpt);
  ASSERT_TRUE(reference.ok());
  const std::vector<int> symptoms = {2, 4, 6, 11};
  auto scores = reference->Score(symptoms);
  ASSERT_TRUE(scores.ok());

  // Decompose the full catalog: the served-top-k contract (every herb
  // exact) is covered by serve_test; the full catalog additionally contains
  // near-zero scores where cancellation can legitimately clear `exact`.
  std::vector<std::size_t> herb_ids;
  for (std::size_t h = 0; h < 40; ++h) herb_ids.push_back(h);
  auto attr = AttributeFromCheckpoint(ckpt, symptoms, herb_ids);
  ASSERT_TRUE(attr.ok()) << attr.status();
  EXPECT_EQ(attr->symptom_ids, symptoms);
  ASSERT_EQ(attr->herbs.size(), herb_ids.size());
  int exact_count = 0;
  for (std::size_t i = 0; i < attr->herbs.size(); ++i) {
    const HerbAttribution& herb = attr->herbs[i];
    EXPECT_EQ(herb.herb_id, herb_ids[i]);
    // The decomposed score IS the model's score, not an approximation.
    EXPECT_EQ(herb.score, (*scores)[herb_ids[i]]);
    EXPECT_TRUE(herb.has_components);
    ASSERT_EQ(herb.per_symptom.size(), symptoms.size());
    if (herb.exact) {
      ++exact_count;
      // Both axes reconstruct bit-exactly whenever exact is reported.
      EXPECT_EQ(herb.bipar + herb.synergy, herb.score);
      EXPECT_EQ(ReconstructPooled(herb), herb.score);
    } else {
      const double scale = std::abs(herb.bipar) + std::abs(herb.score) + 1.0;
      EXPECT_LE(std::abs(herb.bipar + herb.synergy - herb.score),
                1e-15 * scale);
      EXPECT_LE(std::abs(ReconstructPooled(herb) - herb.score),
                1e-15 * scale);
    }
  }
  // The inexact cases (residual-grid step-over or ties-to-even, on either
  // split) are a minority even over the full catalog.
  EXPECT_GE(exact_count, 30) << "of " << attr->herbs.size();
}

TEST(AttributeTest, F64ResidualsAreGenuinelySmall) {
  // At f64 the residuals absorb only rounding, not quantization: they must
  // be tiny relative to the score, or the decomposition is vacuous.
  auto ckpt = MakeCheckpoint(true, true);
  auto attr = AttributeFromCheckpoint(ckpt, {2, 4, 6}, {0, 1, 2, 3, 4});
  ASSERT_TRUE(attr.ok());
  for (const HerbAttribution& herb : attr->herbs) {
    const double scale = std::abs(herb.score) + 1.0;
    EXPECT_LT(std::abs(herb.pool_residual), 1e-9 * scale);
    // synergy is a real algebraic term here (act . r_h), typically O(score);
    // only the pool residual is a rounding correction.
  }
}

TEST(AttributeTest, PerSymptomOrderFollowsInputOrder) {
  auto ckpt = MakeCheckpoint(true, true);
  auto forward = AttributeFromCheckpoint(ckpt, {2, 4, 6}, {7});
  auto reversed = AttributeFromCheckpoint(ckpt, {6, 4, 2}, {7});
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(reversed.ok());
  const auto& f = forward->herbs[0].per_symptom;
  const auto& r = reversed->herbs[0].per_symptom;
  ASSERT_EQ(f.size(), 3u);
  ASSERT_EQ(r.size(), 3u);
  // Same contributions, permuted with the member list.
  EXPECT_EQ(f[0], r[2]);
  EXPECT_EQ(f[1], r[1]);
  EXPECT_EQ(f[2], r[0]);
}

TEST(AttributeTest, NoMlpModelUsesHerbRowDirectly) {
  auto ckpt = MakeCheckpoint(/*with_si_mlp=*/false, /*with_herb_bipar=*/true);
  auto reference = core::CheckpointRecommender::FromCheckpoint(ckpt);
  ASSERT_TRUE(reference.ok());
  auto scores = reference->Score({1, 3, 5});
  ASSERT_TRUE(scores.ok());
  auto attr = AttributeFromCheckpoint(ckpt, {1, 3, 5}, {0, 9, 21});
  ASSERT_TRUE(attr.ok());
  for (const HerbAttribution& herb : attr->herbs) {
    EXPECT_EQ(herb.score, (*scores)[herb.herb_id]);
    EXPECT_EQ(herb.bipar + herb.synergy, herb.score);
    EXPECT_EQ(ReconstructPooled(herb), herb.score);
    // No MLP means no bias path: the pooled split is symptoms + residual.
    EXPECT_EQ(herb.pool_bias, 0.0);
  }
}

TEST(AttributeTest, NoBiparTableReportsWholeScoreAsBipar) {
  auto ckpt = MakeCheckpoint(true, /*with_herb_bipar=*/false);
  auto attr = AttributeFromCheckpoint(ckpt, {2, 4}, {0, 1});
  ASSERT_TRUE(attr.ok());
  for (const HerbAttribution& herb : attr->herbs) {
    EXPECT_FALSE(herb.has_components);
    EXPECT_EQ(herb.bipar, herb.score);
    EXPECT_EQ(herb.synergy, 0.0);
    EXPECT_EQ(ReconstructPooled(herb), herb.score);
  }
}

TEST(AttributeTest, RejectsInvalidInputs) {
  auto ckpt = MakeCheckpoint(true, true);
  // Out-of-range symptom.
  EXPECT_FALSE(AttributeFromCheckpoint(ckpt, {999}, {0}).ok());
  // Out-of-range herb.
  EXPECT_FALSE(AttributeFromCheckpoint(ckpt, {1}, {999}).ok());
  // Empty symptom set.
  EXPECT_FALSE(AttributeFromCheckpoint(ckpt, {}, {0}).ok());
}

}  // namespace
}  // namespace audit
}  // namespace smgcn
