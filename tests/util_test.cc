// Unit tests for src/util: Status/Result, string helpers, CSV writer,
// deterministic RNG, table printer and the thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/registry.h"
#include "src/util/csv.h"
#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"
#include "src/util/table_printer.h"
#include "src/util/thread_pool.h"

namespace smgcn {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad thing");
}

TEST(StatusTest, OkCodeNormalisesMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  ASSIGN_OR_RETURN(const int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_EQ(QuarterOf(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(QuarterOf(5).status().code(), StatusCode::kInvalidArgument);
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  RETURN_IF_ERROR(FailWhenNegative(a));
  RETURN_IF_ERROR(FailWhenNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorShortCircuits) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
}

// --------------------------------------------------------------------------
// String helpers
// --------------------------------------------------------------------------

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceSkipsRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   \t ").empty());
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t\n "), "");
}

TEST(StringUtilTest, JoinAndAffixes) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("symptom_12", "symptom_"));
  EXPECT_FALSE(StartsWith("sym", "symptom_"));
  EXPECT_TRUE(EndsWith("model.weight", ".weight"));
  EXPECT_FALSE(EndsWith("w", ".weight"));
}

TEST(StringUtilTest, ParseIntStrict) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("  -7 "), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("x").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e-3"), -1e-3);
  EXPECT_FALSE(ParseDouble("2.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

// --------------------------------------------------------------------------
// CSV
// --------------------------------------------------------------------------

TEST(CsvTest, WritesHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  ASSERT_TRUE(csv.AddRow({"1", "2"}).ok());
  ASSERT_TRUE(csv.AddNumericRow({3.5, -0.25}).ok());
  EXPECT_EQ(csv.ToString(), "a,b\n1,2\n3.5,-0.25\n");
  EXPECT_EQ(csv.num_rows(), 2u);
}

TEST(CsvTest, RejectsWrongWidth) {
  CsvWriter csv({"a", "b"});
  EXPECT_EQ(csv.AddRow({"1"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(csv.AddRow({"1", "2", "3"}).code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter csv({"x"});
  ASSERT_TRUE(csv.AddRow({"a,b"}).ok());
  ASSERT_TRUE(csv.AddRow({"say \"hi\""}).ok());
  EXPECT_EQ(csv.ToString(), "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, WriteFileFailsOnBadPath) {
  CsvWriter csv({"x"});
  EXPECT_EQ(csv.WriteFile("/nonexistent-dir/file.csv").code(),
            StatusCode::kIoError);
}

TEST(CsvTest, WriteFileRoundTrip) {
  CsvWriter csv({"k", "v"});
  ASSERT_TRUE(csv.AddRow({"a", "1"}).ok());
  const std::string path = testing::TempDir() + "/smgcn_csv_test.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\na,1\n");
}

// --------------------------------------------------------------------------
// Rng / Zipf
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 50; ++i) {
    any_diff = any_diff || (a.UniformInt(0, 1 << 20) != b.UniformInt(0, 1 << 20));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformRealStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(1.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliRespectsP) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(13);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical({1.0, 2.0, 7.0})];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(RngTest, CategoricalSkipsZeroWeights) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Categorical({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t v : sample) EXPECT_LT(v, 50u);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 5).size(), 5u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.Shuffle(&shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng fork = a.Fork();
  // Fork must not just clone the state.
  EXPECT_NE(a.UniformInt(0, 1 << 30), fork.UniformInt(0, 1 << 30));
}

TEST(ZipfTest, PmfSumsToOneAndDecreases) {
  ZipfDistribution zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    total += zipf.Pmf(i);
    if (i > 0) {
      EXPECT_LE(zipf.Pmf(i), zipf.Pmf(i - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SamplesSkewTowardHead) {
  ZipfDistribution zipf(50, 1.2);
  Rng rng(37);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 50);  // far above uniform share
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfDistribution zipf(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(zipf.Pmf(i), 0.25, 1e-12);
}

// --------------------------------------------------------------------------
// TablePrinter
// --------------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22 |"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowFormatsPrecision) {
  TablePrinter table({"m", "a", "b"});
  table.AddNumericRow("row", {0.123456, 2.0}, 4);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("0.1235"), std::string::npos);
  EXPECT_NE(out.find("2.0000"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(table.ToString().find("| only |"), std::string::npos);
}

// --------------------------------------------------------------------------
// Stopwatch & ThreadPool
// --------------------------------------------------------------------------

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  ASSERT_GT(sink, 0.0);  // keep the loop observable
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_GE(watch.ElapsedMillis(), watch.ElapsedSeconds());  // ms >= s numerically
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}


TEST(LoggingTest, MinLevelRoundTrip) {
  const smgcn::LogLevel original = smgcn::GetMinLogLevel();
  smgcn::SetMinLogLevel(smgcn::LogLevel::kError);
  EXPECT_EQ(smgcn::GetMinLogLevel(), smgcn::LogLevel::kError);
  // Suppressed levels must not crash (sink-level filtering).
  LOG_DEBUG << "suppressed";
  LOG_INFO << "suppressed";
  smgcn::SetMinLogLevel(original);
}

TEST(LoggingTest, SinkCapturesFormattedLines) {
  std::vector<std::pair<smgcn::LogLevel, std::string>> captured;
  smgcn::SetLogSink(
      [&captured](smgcn::LogLevel level, const std::string& line) {
        captured.emplace_back(level, line);
      });
  LOG_INFO << "sink test message";
  LOG_WARNING << "second line";
  smgcn::SetLogSink(nullptr);  // restore stderr before `captured` dies
  LOG_INFO << "after restore";  // must not reach the removed sink
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, smgcn::LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("[INFO"), std::string::npos);
  EXPECT_NE(captured[0].second.find("sink test message"), std::string::npos);
  EXPECT_EQ(captured[1].first, smgcn::LogLevel::kWarning);
}

TEST(LoggingTest, SinkRespectsMinLevel) {
  const smgcn::LogLevel original = smgcn::GetMinLogLevel();
  std::vector<std::string> captured;
  smgcn::SetLogSink([&captured](smgcn::LogLevel, const std::string& line) {
    captured.push_back(line);
  });
  smgcn::SetMinLogLevel(smgcn::LogLevel::kWarning);
  LOG_INFO << "filtered out";
  LOG_WARNING << "kept";
  smgcn::SetLogSink(nullptr);
  smgcn::SetMinLogLevel(original);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("kept"), std::string::npos);
}

TEST(LoggingTest, ErrorsLoggedCounterTracksErrorLines) {
  smgcn::obs::Counter* errors =
      smgcn::obs::Registry::Global().GetCounter("log.errors_logged");
  smgcn::obs::Counter* messages =
      smgcn::obs::Registry::Global().GetCounter("log.messages");
  smgcn::SetLogSink([](smgcn::LogLevel, const std::string&) {});  // quiet
  const std::uint64_t errors_before = errors->value();
  const std::uint64_t messages_before = messages->value();
  LOG_INFO << "not an error";
  LOG_ERROR << "an error";
  smgcn::SetLogSink(nullptr);
  EXPECT_EQ(errors->value(), errors_before + 1);
  EXPECT_EQ(messages->value(), messages_before + 2);
}

TEST(LoggingTest, CheckMacrosPassOnTrueConditions) {
  SMGCN_CHECK(true) << "never printed";
  SMGCN_CHECK_EQ(2, 2);
  SMGCN_CHECK_LT(1, 2);
  SMGCN_CHECK_GE(2, 2);
  SMGCN_CHECK_OK(smgcn::Status::OK());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SMGCN_CHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(SMGCN_CHECK_OK(smgcn::Status::Internal("boom")), "boom");
}

TEST(ThreadPoolTest, StressManyProducersManyTasks) {
  // The serving engine submits micro-batches from a batcher thread while
  // clients hammer the sync API; this stress mirrors that pattern —
  // several producer threads racing Submit against a worker pool, with
  // interleaved Waits.
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  constexpr int kProducers = 6;
  constexpr int kTasksPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&sum, p, i] { sum.fetch_add(p * kTasksPerProducer + i); });
        if (i % 100 == 0) pool.Wait();  // interleave waits with submits
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.Wait();
  long expected = 0;
  for (int i = 0; i < kProducers * kTasksPerProducer; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  smgcn::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(10); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace smgcn
