// Unit tests for the CSR sparse matrix and graph statistics.
#include <gtest/gtest.h>

#include "src/graph/csr_matrix.h"
#include "src/graph/graph_stats.h"
#include "src/util/random.h"

namespace smgcn {
namespace graph {
namespace {

using tensor::Matrix;

CsrMatrix SmallMatrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m(4, 5);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_DOUBLE_EQ(m.At(2, 3), 0.0);
  EXPECT_EQ(m.RowNnz(0), 0u);
}

TEST(CsrTest, FromTripletsBasic) {
  const CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  EXPECT_EQ(m.RowNnz(0), 2u);
  EXPECT_EQ(m.RowNnz(1), 0u);
}

TEST(CsrTest, DuplicateTripletsAreSummed) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(2, 2, {{0, 1, 1.0}, {0, 1, 2.5}, {1, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(m.At(1, 0), -1.0);
}

TEST(CsrTest, FromDenseDropsZeros) {
  const Matrix dense{{0.0, 1.0}, {2.0, 0.0}};
  const CsrMatrix m = CsrMatrix::FromDense(dense);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_LT(m.ToDense().MaxAbsDiff(dense), 1e-15);
}

TEST(CsrTest, MultiplyMatchesDense) {
  Rng rng(1);
  const Matrix dense = Matrix::RandomNormal(6, 5, 0.0, 1.0, &rng)
                           .Map([](double v) { return std::fabs(v) < 0.7 ? 0.0 : v; });
  const CsrMatrix sparse = CsrMatrix::FromDense(dense);
  const Matrix x = Matrix::RandomNormal(5, 4, 0.0, 1.0, &rng);
  EXPECT_LT(sparse.Multiply(x).MaxAbsDiff(dense.MatMul(x)), 1e-12);
}

TEST(CsrTest, TransposeMultiplyMatchesDense) {
  Rng rng(2);
  const Matrix dense = Matrix::RandomNormal(6, 5, 0.0, 1.0, &rng)
                           .Map([](double v) { return std::fabs(v) < 0.7 ? 0.0 : v; });
  const CsrMatrix sparse = CsrMatrix::FromDense(dense);
  const Matrix x = Matrix::RandomNormal(6, 3, 0.0, 1.0, &rng);
  EXPECT_LT(sparse.TransposeMultiply(x).MaxAbsDiff(dense.Transpose().MatMul(x)),
            1e-12);
}

TEST(CsrTest, MultiplyEmptyRowsGiveZero) {
  const CsrMatrix m = SmallMatrix();
  const Matrix x = Matrix::Full(3, 2, 1.0);
  const Matrix y = m.Multiply(x);
  EXPECT_DOUBLE_EQ(y(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 0), 3.0);  // 1 + 2
  EXPECT_DOUBLE_EQ(y(2, 0), 7.0);  // 3 + 4
}

TEST(CsrTest, RowNormalizedRowsSumToOne) {
  const CsrMatrix norm = SmallMatrix().RowNormalized();
  const auto sums = norm.RowSums();
  EXPECT_NEAR(sums[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(sums[1], 0.0);  // empty row untouched
  EXPECT_NEAR(sums[2], 1.0, 1e-12);
  EXPECT_NEAR(norm.At(0, 2), 2.0 / 3.0, 1e-12);
}

TEST(CsrTest, TransposeIsExact) {
  const CsrMatrix m = SmallMatrix();
  const CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), m.cols());
  EXPECT_EQ(t.cols(), m.rows());
  EXPECT_EQ(t.nnz(), m.nnz());
  EXPECT_LT(t.ToDense().MaxAbsDiff(m.ToDense().Transpose()), 1e-15);
}

TEST(CsrTest, RowSums) {
  const auto sums = SmallMatrix().RowSums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 0.0);
  EXPECT_DOUBLE_EQ(sums[2], 7.0);
}

TEST(CsrTest, ForEachInRowVisitsSortedEntries) {
  const CsrMatrix m = SmallMatrix();
  std::vector<std::size_t> cols;
  std::vector<double> vals;
  m.ForEachInRow(2, [&](std::size_t c, double v) {
    cols.push_back(c);
    vals.push_back(v);
  });
  EXPECT_EQ(cols, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(vals, (std::vector<double>{3.0, 4.0}));
}

TEST(CsrDeathTest, OutOfRangeTripletAborts) {
  EXPECT_DEATH(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}), "out of range");
  EXPECT_DEATH(CsrMatrix::FromTriplets(2, 2, {{0, 5, 1.0}}), "out of range");
}

TEST(CsrDeathTest, MultiplyShapeMismatchAborts) {
  const CsrMatrix m = SmallMatrix();
  EXPECT_DEATH(m.Multiply(Matrix(2, 2)), "spmm");
  EXPECT_DEATH(m.TransposeMultiply(Matrix(2, 2)), "spmm");
}

// --------------------------------------------------------------------------
// Degree statistics
// --------------------------------------------------------------------------

TEST(GraphStatsTest, ComputesDegreeSummary) {
  const DegreeStats stats = ComputeDegreeStats(SmallMatrix());
  EXPECT_EQ(stats.num_nodes, 3u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_NEAR(stats.mean_degree, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_EQ(stats.min_degree, 0u);
  EXPECT_NEAR(stats.isolated_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_GT(stats.stddev_degree, 0.0);
}

TEST(GraphStatsTest, EmptyGraph) {
  const DegreeStats stats = ComputeDegreeStats(CsrMatrix(0, 0));
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
}

TEST(GraphStatsTest, UniformDegreesHaveZeroStddev) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}});
  const DegreeStats stats = ComputeDegreeStats(m);
  EXPECT_NEAR(stats.stddev_degree, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 2.0);
}

TEST(GraphStatsTest, ToStringMentionsKeyNumbers) {
  const std::string s = DegreeStatsToString(ComputeDegreeStats(SmallMatrix()));
  EXPECT_NE(s.find("nodes=3"), std::string::npos);
  EXPECT_NE(s.find("edges=4"), std::string::npos);
}

}  // namespace
}  // namespace graph
}  // namespace smgcn
