// Tests for src/serve: query canonicalization, the embedding store's
// batched scoring (bit-identical to CheckpointRecommender::Score), the
// sharded LRU cache, serving stats and the ServingEngine's sync, async and
// shutdown behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/audit.h"
#include "src/core/artifact.h"
#include "src/core/checkpoint.h"
#include "src/obs/registry.h"
#include "src/serve/cache.h"
#include "src/serve/embedding_store.h"
#include "src/serve/engine.h"
#include "src/serve/query.h"
#include "src/serve/slow_log.h"
#include "src/serve/stats.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/random.h"

namespace smgcn {
namespace serve {
namespace {

// A deterministic synthetic checkpoint: no training required to exercise
// the serving stack.
core::InferenceCheckpoint MakeCheckpoint(std::size_t num_symptoms = 24,
                                         std::size_t num_herbs = 40,
                                         std::size_t dim = 8,
                                         bool with_si_mlp = true,
                                         bool with_herb_bipar = false) {
  Rng rng(907);
  core::InferenceCheckpoint ckpt;
  ckpt.model_name = "test-ckpt";
  ckpt.symptom_embeddings =
      tensor::Matrix::RandomNormal(num_symptoms, dim, 0.0, 1.0, &rng);
  ckpt.herb_embeddings =
      tensor::Matrix::RandomNormal(num_herbs, dim, 0.0, 1.0, &rng);
  ckpt.has_si_mlp = with_si_mlp;
  if (with_si_mlp) {
    ckpt.si_weight = tensor::Matrix::RandomNormal(dim, dim, 0.0, 0.5, &rng);
    ckpt.si_bias = tensor::Matrix::RandomNormal(1, dim, 0.0, 0.5, &rng);
  }
  if (with_herb_bipar) {
    ckpt.has_herb_bipar = true;
    ckpt.herb_bipar =
        tensor::Matrix::RandomNormal(num_herbs, dim, 0.0, 0.5, &rng);
  }
  return ckpt;
}

// --------------------------------------------------------------------------
// Canonicalization
// --------------------------------------------------------------------------

TEST(CanonicalizeTest, SortsAndDedups) {
  auto q = Canonicalize({3, 1, 3, 7, 1}, 10);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->symptom_ids, (std::vector<int>{1, 3, 7}));
}

TEST(CanonicalizeTest, EquivalentQueriesShareKey) {
  auto a = Canonicalize({3, 1, 3}, 10);
  auto b = Canonicalize({1, 3}, 10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->symptom_ids, b->symptom_ids);
  EXPECT_EQ(a->key, b->key);
}

TEST(CanonicalizeTest, RejectsEmptyAndOutOfRange) {
  EXPECT_EQ(Canonicalize({}, 10).status().code(), smgcn::StatusCode::kInvalidArgument);
  EXPECT_EQ(Canonicalize({-1}, 10).status().code(),
            smgcn::StatusCode::kInvalidArgument);
  EXPECT_EQ(Canonicalize({10}, 10).status().code(),
            smgcn::StatusCode::kInvalidArgument);
  EXPECT_TRUE(Canonicalize({9}, 10).ok());
}

TEST(CanonicalizeTest, EdgeCaseInputs) {
  // Duplicates in any order collapse to one canonical set and one key.
  auto dup = Canonicalize({5, 5, 5, 5}, 10);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->symptom_ids, (std::vector<int>{5}));
  EXPECT_EQ(dup->key, Canonicalize({5}, 10)->key);
  // Empty set stays invalid regardless of vocabulary size.
  EXPECT_EQ(Canonicalize({}, 0).status().code(), smgcn::StatusCode::kInvalidArgument);
  // One out-of-range id poisons an otherwise-valid set — no partial accept.
  EXPECT_EQ(Canonicalize({1, 3, 10, 5}, 10).status().code(),
            smgcn::StatusCode::kInvalidArgument);
  EXPECT_EQ(Canonicalize({1, 3, -2, 5}, 10).status().code(),
            smgcn::StatusCode::kInvalidArgument);
}

TEST(CanonicalizeTest, KeysSeparateDistinctSets) {
  // Prefixes, permut-equivalent sets and near misses must hash apart.
  std::set<std::uint64_t> keys;
  std::vector<std::vector<int>> sets = {
      {1}, {1, 3}, {1, 3, 5}, {3, 5}, {1, 5}, {2, 3}, {0}, {5}};
  for (const auto& s : sets) keys.insert(Canonicalize(s, 10)->key);
  EXPECT_EQ(keys.size(), sets.size());
}

TEST(CanonicalizeTest, CombineKeySeparatesSalts) {
  const std::uint64_t key = Canonicalize({1, 2}, 10)->key;
  EXPECT_NE(CombineKey(key, 5), CombineKey(key, 10));
  EXPECT_NE(CombineKey(key, 5), key);
}

// --------------------------------------------------------------------------
// EmbeddingStore
// --------------------------------------------------------------------------

TEST(EmbeddingStoreTest, BuildRejectsInvalidCheckpoint) {
  core::InferenceCheckpoint broken = MakeCheckpoint();
  broken.si_weight = tensor::Matrix(3, 3, 0.0);  // wrong shape vs dim=8
  EXPECT_FALSE(EmbeddingStore::Build(std::move(broken)).ok());
}

TEST(EmbeddingStoreTest, ExposesCheckpointShape) {
  auto store = EmbeddingStore::Build(MakeCheckpoint(24, 40, 8));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_symptoms(), 24u);
  EXPECT_EQ(store->num_herbs(), 40u);
  EXPECT_EQ(store->dim(), 8u);
  EXPECT_TRUE(store->has_si_mlp());
  EXPECT_EQ(store->model_name(), "test-ckpt");
}

// The acceptance bar: every row of a batched score matrix must be
// bit-identical to scoring that query alone through the original
// CheckpointRecommender path.
TEST(EmbeddingStoreTest, BatchedScoresBitIdenticalToPerQueryScore) {
  for (bool with_mlp : {true, false}) {
    core::InferenceCheckpoint ckpt = MakeCheckpoint(24, 40, 8, with_mlp);
    auto reference = core::CheckpointRecommender::FromCheckpoint(ckpt);
    ASSERT_TRUE(reference.ok());
    auto store = EmbeddingStore::Build(std::move(ckpt));
    ASSERT_TRUE(store.ok());

    std::vector<std::vector<int>> raw_queries = {
        {0}, {1, 2, 3}, {5, 9, 13, 21}, {23}, {2, 4, 6, 8, 10, 12}};
    std::vector<CanonicalQuery> batch;
    for (const auto& raw : raw_queries) {
      batch.push_back(*Canonicalize(raw, store->num_symptoms()));
    }
    const tensor::Matrix scores = store->ScoreBatch(batch);
    ASSERT_EQ(scores.rows(), batch.size());
    ASSERT_EQ(scores.cols(), store->num_herbs());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto expected = reference->Score(batch[i].symptom_ids);
      ASSERT_TRUE(expected.ok());
      for (std::size_t h = 0; h < store->num_herbs(); ++h) {
        // EXPECT_EQ, not NEAR: rows must match bit for bit.
        EXPECT_EQ(scores(i, h), (*expected)[h])
            << "query " << i << " herb " << h << " mlp=" << with_mlp;
      }
    }
  }
}

TEST(EmbeddingStoreTest, ScoreOneMatchesBatchRow) {
  auto store = EmbeddingStore::Build(MakeCheckpoint());
  ASSERT_TRUE(store.ok());
  const CanonicalQuery q = *Canonicalize({2, 7, 11}, store->num_symptoms());
  const std::vector<double> one = store->ScoreOne(q);
  const tensor::Matrix batch = store->ScoreBatch({q, q});
  for (std::size_t h = 0; h < store->num_herbs(); ++h) {
    EXPECT_EQ(one[h], batch(0, h));
    EXPECT_EQ(one[h], batch(1, h));
  }
}

TEST(EmbeddingStoreTest, Float32BuildHalvesPayloadAndTracksReference) {
  core::InferenceCheckpoint ckpt = MakeCheckpoint(24, 40, 8, true);
  auto f64 = EmbeddingStore::Build(ckpt);
  auto f32 = EmbeddingStore::Build(std::move(ckpt), tensor::Precision::kFloat32);
  ASSERT_TRUE(f64.ok());
  ASSERT_TRUE(f32.ok());
  EXPECT_EQ(f64->precision(), tensor::Precision::kFloat64);
  EXPECT_EQ(f32->precision(), tensor::Precision::kFloat32);
  EXPECT_EQ(f32->payload_bytes() * 2, f64->payload_bytes());
  EXPECT_EQ(f32->num_herbs(), f64->num_herbs());

  // f32 scores track the f64 reference to single-precision accuracy; the
  // strict ranking guarantees live in kernels_test's parity suite.
  const CanonicalQuery q = *Canonicalize({2, 7, 11}, f64->num_symptoms());
  const std::vector<double> ref = f64->ScoreOne(q);
  const std::vector<double> got = f32->ScoreOne(q);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t h = 0; h < ref.size(); ++h) {
    EXPECT_NEAR(got[h], ref[h], 1e-4) << "herb " << h;
  }
}

TEST(EmbeddingStoreTest, Float32BatchRowsMatchSingleQueryRuns) {
  // The row-independence contract holds at f32 too: batched rows are
  // bit-identical to single-query runs within one backend.
  for (bool with_mlp : {true, false}) {
    auto store = EmbeddingStore::Build(MakeCheckpoint(24, 40, 8, with_mlp),
                                       tensor::Precision::kFloat32);
    ASSERT_TRUE(store.ok());
    std::vector<CanonicalQuery> batch;
    for (const auto& raw : std::vector<std::vector<int>>{
             {0}, {1, 2, 3}, {5, 9, 13, 21}, {23}, {2, 4, 6, 8, 10, 12}}) {
      batch.push_back(*Canonicalize(raw, store->num_symptoms()));
    }
    const tensor::Matrix scores = store->ScoreBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::vector<double> one = store->ScoreOne(batch[i]);
      for (std::size_t h = 0; h < store->num_herbs(); ++h) {
        EXPECT_EQ(scores(i, h), one[h])
            << "query " << i << " herb " << h << " mlp=" << with_mlp;
      }
    }
  }
}

TEST(EmbeddingStoreTest, Int8BuildShrinksPayloadAndTracksReference) {
  // Embedding payload drops 8x (one int8 per f64 element plus one f32 scale
  // per row); the f32 SI-MLP copy keeps the total nearer 1/5 at this small
  // shape and approaches 1/8 as the catalog grows.
  core::InferenceCheckpoint ckpt = MakeCheckpoint(64, 256, 32, true);
  auto f64 = EmbeddingStore::Build(ckpt);
  auto s8 = EmbeddingStore::Build(std::move(ckpt), tensor::Precision::kInt8);
  ASSERT_TRUE(f64.ok());
  ASSERT_TRUE(s8.ok());
  EXPECT_EQ(s8->precision(), tensor::Precision::kInt8);
  EXPECT_EQ(s8->num_herbs(), f64->num_herbs());
  EXPECT_LT(s8->payload_bytes() * 5, f64->payload_bytes());

  core::InferenceCheckpoint no_mlp = MakeCheckpoint(64, 256, 32, false);
  auto f64_plain = EmbeddingStore::Build(no_mlp);
  auto s8_plain =
      EmbeddingStore::Build(std::move(no_mlp), tensor::Precision::kInt8);
  ASSERT_TRUE(f64_plain.ok());
  ASSERT_TRUE(s8_plain.ok());
  EXPECT_LT(s8_plain->payload_bytes() * 6, f64_plain->payload_bytes());

  // Quantized scores track the f64 reference to 8-bit accuracy — a few
  // percent of the catalog's score magnitude (two quantized operands, each
  // within 1/254 of its row absmax). The strict ranking guarantees live in
  // kernels_test's int8 parity suite.
  const CanonicalQuery q = *Canonicalize({2, 7, 11}, f64->num_symptoms());
  const std::vector<double> ref = f64->ScoreOne(q);
  const std::vector<double> got = s8->ScoreOne(q);
  ASSERT_EQ(got.size(), ref.size());
  double magnitude = 0.0;
  for (const double r : ref) magnitude = std::max(magnitude, std::abs(r));
  for (std::size_t h = 0; h < ref.size(); ++h) {
    EXPECT_NEAR(got[h], ref[h], 0.05 * magnitude) << "herb " << h;
  }
}

TEST(EmbeddingStoreTest, Int8BatchRowsMatchSingleQueryRuns) {
  // Same row-independence contract as f64/f32: within one backend, batched
  // int8 rows are bit-identical to single-query runs (with and without the
  // SI-MLP stage).
  for (bool with_mlp : {true, false}) {
    auto store = EmbeddingStore::Build(MakeCheckpoint(24, 40, 8, with_mlp),
                                       tensor::Precision::kInt8);
    ASSERT_TRUE(store.ok());
    std::vector<CanonicalQuery> batch;
    for (const auto& raw : std::vector<std::vector<int>>{
             {0}, {1, 2, 3}, {5, 9, 13, 21}, {23}, {2, 4, 6, 8, 10, 12}}) {
      batch.push_back(*Canonicalize(raw, store->num_symptoms()));
    }
    const tensor::Matrix scores = store->ScoreBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::vector<double> one = store->ScoreOne(batch[i]);
      for (std::size_t h = 0; h < store->num_herbs(); ++h) {
        EXPECT_EQ(scores(i, h), one[h])
            << "query " << i << " herb " << h << " mlp=" << with_mlp;
      }
    }
  }
}

TEST(EmbeddingStoreTest, ScoreBatchIntoMatchesScoreBatchAllPrecisions) {
  // The engine's zero-copy entry point must produce exactly the rows the
  // Matrix-returning path does, at every stored precision.
  for (const auto precision :
       {tensor::Precision::kFloat64, tensor::Precision::kFloat32,
        tensor::Precision::kInt8}) {
    auto store = EmbeddingStore::Build(MakeCheckpoint(24, 40, 8, true),
                                       precision);
    ASSERT_TRUE(store.ok());
    std::vector<CanonicalQuery> batch;
    for (const auto& raw : std::vector<std::vector<int>>{
             {0}, {1, 2, 3}, {5, 9, 13, 21}, {23}}) {
      batch.push_back(*Canonicalize(raw, store->num_symptoms()));
    }
    const tensor::Matrix expected = store->ScoreBatch(batch);
    std::vector<std::vector<double>> rows(batch.size());
    store->ScoreBatchInto(batch, rows.data());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(rows[i].size(), store->num_herbs());
      for (std::size_t h = 0; h < store->num_herbs(); ++h) {
        EXPECT_EQ(rows[i][h], expected(i, h))
            << "precision " << static_cast<int>(precision) << " query " << i
            << " herb " << h;
      }
    }
  }
}

TEST(EmbeddingStoreTest, Int8BuildFromArtifactServesStoredIntegers) {
  // BuildFromArtifact must serve the artifact's quantized payload verbatim:
  // scores from the artifact-backed store match a store built by
  // re-quantizing the dequantized checkpoint (bit for bit, because
  // dequantize -> requantize reproduces the stored integers exactly).
  core::InferenceCheckpoint ckpt = MakeCheckpoint(24, 40, 8, true);
  const std::string path = testing::TempDir() + "/smgcn_store8.smga";
  ASSERT_TRUE(
      core::SaveArtifact(ckpt, "v1", path, tensor::Precision::kInt8).ok());
  auto artifact = core::MappedArtifact::Open(path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  auto from_artifact = EmbeddingStore::BuildFromArtifact(*artifact);
  ASSERT_TRUE(from_artifact.ok()) << from_artifact.status();
  EXPECT_EQ(from_artifact->precision(), tensor::Precision::kInt8);

  auto restored = artifact->ToCheckpoint();
  ASSERT_TRUE(restored.ok());
  auto rebuilt =
      EmbeddingStore::Build(std::move(*restored), tensor::Precision::kInt8);
  ASSERT_TRUE(rebuilt.ok());

  const CanonicalQuery q = *Canonicalize({2, 7, 11}, 24);
  const std::vector<double> a = from_artifact->ScoreOne(q);
  const std::vector<double> b = rebuilt->ScoreOne(q);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t h = 0; h < a.size(); ++h) EXPECT_EQ(a[h], b[h]);
}

// --------------------------------------------------------------------------
// Cache
// --------------------------------------------------------------------------

TEST(CacheTest, MissThenHit) {
  ShardedTopKCache cache(16, 4);
  const std::vector<int> ids{1, 3};
  std::vector<std::size_t> out;
  EXPECT_FALSE(cache.Lookup(42, ids, 5, &out));
  cache.Insert(42, ids, 5, {7, 8, 9});
  ASSERT_TRUE(cache.Lookup(42, ids, 5, &out));
  EXPECT_EQ(out, (std::vector<std::size_t>{7, 8, 9}));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(CacheTest, DifferentKIsAMiss) {
  ShardedTopKCache cache(16, 1);
  const std::vector<int> ids{1, 3};
  cache.Insert(42, ids, 5, {7, 8});
  std::vector<std::size_t> out;
  EXPECT_FALSE(cache.Lookup(42, ids, 10, &out));
}

TEST(CacheTest, HashCollisionVerifiedByIds) {
  ShardedTopKCache cache(16, 1);
  cache.Insert(42, {1, 3}, 5, {7});
  std::vector<std::size_t> out;
  // Same key, different canonical ids: must not serve the other query's herbs.
  EXPECT_FALSE(cache.Lookup(42, {2, 4}, 5, &out));
}

TEST(CacheTest, EvictsLeastRecentlyUsed) {
  ShardedTopKCache cache(2, 1);  // two entries, one shard
  cache.Insert(1, {1}, 5, {10});
  cache.Insert(2, {2}, 5, {20});
  std::vector<std::size_t> out;
  ASSERT_TRUE(cache.Lookup(1, {1}, 5, &out));  // refresh key 1
  cache.Insert(3, {3}, 5, {30});               // evicts key 2 (LRU)
  EXPECT_TRUE(cache.Lookup(1, {1}, 5, &out));
  EXPECT_FALSE(cache.Lookup(2, {2}, 5, &out));
  EXPECT_TRUE(cache.Lookup(3, {3}, 5, &out));
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(CacheTest, ClearDropsEntriesKeepsCounters) {
  ShardedTopKCache cache(8, 2);
  cache.Insert(1, {1}, 5, {10});
  std::vector<std::size_t> out;
  ASSERT_TRUE(cache.Lookup(1, {1}, 5, &out));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(1, {1}, 5, &out));
  EXPECT_EQ(cache.Stats().size, 0u);
  EXPECT_EQ(cache.Stats().hits, 1u);
}

// --------------------------------------------------------------------------
// Stats
// --------------------------------------------------------------------------

TEST(StatsTest, HistogramPercentilesBracketSamples) {
  LatencyHistogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(100e-6);  // ~100us
  for (int i = 0; i < 10; ++i) hist.Record(10e-3);   // ~10ms
  EXPECT_EQ(hist.count(), 100u);
  // p50 lives in the 100us bucket (x2 bucket resolution), p99 in the 10ms one.
  EXPECT_GT(hist.Percentile(0.50), 30e-6);
  EXPECT_LT(hist.Percentile(0.50), 300e-6);
  EXPECT_GT(hist.Percentile(0.99), 3e-3);
  EXPECT_LT(hist.Percentile(0.99), 30e-3);
  EXPECT_DOUBLE_EQ(hist.max_seconds(), 10e-3);
  EXPECT_EQ(hist.Percentile(0.0), hist.Percentile(1e-9));
}

TEST(StatsTest, EmptyHistogramIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.mean_seconds(), 0.0);
}

TEST(StatsTest, SingleSamplePercentileIsExact) {
  // Regression: the raw bucket midpoint for one 100us sample is ~90.5us;
  // clamping to the recorded range must report the sample itself.
  LatencyHistogram hist;
  hist.Record(100e-6);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 100e-6);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 100e-6);
}

TEST(StatsTest, IdenticalSamplesClampToThemselves) {
  LatencyHistogram hist;
  for (int i = 0; i < 4; ++i) hist.Record(120e-6);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 120e-6);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.99), 120e-6);
}

TEST(StatsTest, OverflowBucketPercentileReportsMax) {
  // Regression: a sample past the last bucket edge used to report that
  // bucket's (meaningless) midpoint, ~2e8s for a 1e9s sample.
  LatencyHistogram hist;
  for (int i = 0; i < 9; ++i) hist.Record(1e-6);
  hist.Record(1e9);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 1e9);
  EXPECT_DOUBLE_EQ(hist.max_seconds(), 1e9);
}

TEST(StatsTest, SnapshotCsvRowMatchesHeader) {
  StatsRecorder recorder;
  recorder.RecordBatch(4);
  for (int i = 0; i < 4; ++i) recorder.RecordQuery(1e-3);
  const ServingStatsSnapshot snap = recorder.Snapshot(CacheStats{});
  EXPECT_EQ(snap.queries, 4u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size, 4.0);
  EXPECT_EQ(snap.ToCsvRow().size(), ServingStatsSnapshot::CsvHeader().size());
  EXPECT_FALSE(snap.ToString().empty());
}

// --------------------------------------------------------------------------
// ServingEngine
// --------------------------------------------------------------------------

std::unique_ptr<ServingEngine> MakeEngine(ServingEngineOptions options = {}) {
  auto engine = ServingEngine::Create(MakeCheckpoint(), options);
  SMGCN_CHECK(engine.ok()) << engine.status();
  return std::move(engine).value();
}

TEST(ServingEngineTest, CreateRejectsBadOptions) {
  ServingEngineOptions options;
  options.max_batch_size = 0;
  EXPECT_EQ(ServingEngine::Create(MakeCheckpoint(), options).status().code(),
            smgcn::StatusCode::kInvalidArgument);
}

TEST(ServingEngineTest, ScoreBatchBitIdenticalToCheckpointRecommender) {
  core::InferenceCheckpoint ckpt = MakeCheckpoint();
  auto reference = core::CheckpointRecommender::FromCheckpoint(ckpt);
  ASSERT_TRUE(reference.ok());
  auto engine = ServingEngine::Create(std::move(ckpt));
  ASSERT_TRUE(engine.ok());

  const std::vector<std::vector<int>> queries = {
      {4, 2, 0}, {11}, {1, 3, 5, 7, 9}, {20, 22}};
  auto batch = (*engine)->ScoreBatch(queries);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto canonical = Canonicalize(queries[i], 24);
    auto expected = reference->Score(canonical->symptom_ids);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ((*batch)[i], *expected) << "query " << i;
  }
}

TEST(ServingEngineTest, RecommendMatchesRecommendBatchAndIsCanonical) {
  auto engine = MakeEngine();
  // {3,1,3} and {1,3} are the same query; both paths must agree.
  auto a = engine->Recommend({3, 1, 3}, 10);
  auto b = engine->Recommend({1, 3}, 10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  auto batch = engine->RecommendBatch({{3, 1, 3}, {1, 3}}, 10);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*batch)[0], *a);
  EXPECT_EQ((*batch)[1], *a);
}

TEST(ServingEngineTest, MalformedQueryNamesIndex) {
  auto engine = MakeEngine();
  auto result = engine->ScoreBatch({{1}, {999}});
  EXPECT_EQ(result.status().code(), smgcn::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("query 1"), std::string::npos);
  EXPECT_TRUE(engine->ScoreBatch({}).ok());  // empty batch is fine
}

TEST(ServingEngineTest, RepeatQueriesHitCache) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->Recommend({1, 2, 3}, 10).ok());
  ASSERT_TRUE(engine->Recommend({3, 2, 1, 1}, 10).ok());  // same canonical set
  const ServingStatsSnapshot stats = engine->Stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
  // The second query must not have triggered another GEMM.
  EXPECT_EQ(stats.batches, 1u);
}

TEST(ServingEngineTest, TopKBeyondCatalogClampsAndSharesOneCacheEntry) {
  // The checkpoint has 40 herbs. Any k >= 40 means "rank every herb": the
  // result must be all 40 ids (no error, no over-read), and different
  // over-catalog ks must unify into ONE cache entry. Before the clamp, each
  // k cached separately (the cache requires an exact k match), so the
  // second request below was a miss and a fresh GEMM.
  auto engine = MakeEngine();
  const std::size_t num_herbs = engine->store().num_herbs();
  ASSERT_EQ(num_herbs, 40u);

  auto exact = engine->Recommend({1, 2, 3}, num_herbs);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(exact->size(), num_herbs);
  std::set<std::size_t> distinct(exact->begin(), exact->end());
  EXPECT_EQ(distinct.size(), num_herbs);  // every herb exactly once

  auto over = engine->Recommend({1, 2, 3}, num_herbs + 1);
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(*over, *exact);
  auto way_over = engine->Recommend({1, 2, 3}, 1000000);
  ASSERT_TRUE(way_over.ok());
  EXPECT_EQ(*way_over, *exact);

  const ServingStatsSnapshot stats = engine->Stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, 2u);
  EXPECT_EQ(stats.batches, 1u);  // one GEMM served all three ks
}

TEST(ServingEngineTest, SubmitClampsTopKBeyondCatalog) {
  auto engine = MakeEngine();
  const std::size_t num_herbs = engine->store().num_herbs();
  auto expected = engine->Recommend({2, 4}, num_herbs);
  ASSERT_TRUE(expected.ok());
  auto future = engine->Submit({2, 4}, num_herbs + 25);
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, *expected);
}

TEST(ServingEngineTest, Float32PrecisionOptionServes) {
  ServingEngineOptions options;
  options.precision = tensor::Precision::kFloat32;
  auto f32_engine = MakeEngine(options);
  EXPECT_EQ(f32_engine->store().precision(), tensor::Precision::kFloat32);
  auto f64_engine = MakeEngine();

  auto a = f32_engine->Recommend({1, 2, 3}, 10);
  auto b = f64_engine->Recommend({1, 2, 3}, 10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), 10u);
  // Narrowing can swap near-tied neighbours; membership should still be
  // near-total (the strict thresholds live in kernels_test).
  std::set<std::size_t> a_set(a->begin(), a->end());
  std::size_t agree = 0;
  for (std::size_t id : *b) agree += a_set.count(id);
  EXPECT_GE(agree, 9u);

  // Publish through the engine keeps the configured precision.
  ASSERT_TRUE(f32_engine->Publish(MakeCheckpoint(), "v2").ok());
  EXPECT_EQ(f32_engine->store().precision(), tensor::Precision::kFloat32);
}

TEST(ServingEngineTest, StatsCompatibilityViewMatchesRegistry) {
  // Stats() is a thin view assembled from the engine's registry scope; for
  // a fixed workload its values must match the pre-redesign recorder:
  // 3 distinct queries (one GEMM each) plus 1 repeat (cache hit, no GEMM).
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->Recommend({1, 2, 3}, 10).ok());
  ASSERT_TRUE(engine->Recommend({4, 5}, 10).ok());
  ASSERT_TRUE(engine->Recommend({6}, 10).ok());
  ASSERT_TRUE(engine->Recommend({3, 2, 1}, 10).ok());

  const ServingStatsSnapshot stats = engine->Stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.batched_queries, 3u);
  EXPECT_EQ(stats.max_batch_size, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 1.0);
  EXPECT_EQ(stats.cache.misses, 3u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_GT(stats.latency_p50_ms, 0.0);

  // Cross-check every snapshot field against the underlying instruments.
  obs::Registry& reg = obs::Registry::Global();
  const std::string& prefix = engine->obs_prefix();
  EXPECT_EQ(reg.GetCounter(prefix + "queries")->value(), stats.queries);
  EXPECT_EQ(reg.GetCounter(prefix + "batches")->value(), stats.batches);
  EXPECT_EQ(reg.GetCounter(prefix + "batched_queries")->value(),
            stats.batched_queries);
  EXPECT_EQ(reg.GetCounter(prefix + "cache.hits")->value(), stats.cache.hits);
  EXPECT_EQ(reg.GetCounter(prefix + "cache.misses")->value(),
            stats.cache.misses);
  EXPECT_EQ(reg.GetHistogram(prefix + "latency.seconds")->count(),
            stats.queries);
}

TEST(ServingEngineTest, EnginesGetDistinctObsScopes) {
  auto a = MakeEngine();
  auto b = MakeEngine();
  EXPECT_NE(a->obs_prefix(), b->obs_prefix());
  // One engine's traffic must not leak into the other's instruments.
  ASSERT_TRUE(a->Recommend({1, 2}, 5).ok());
  EXPECT_EQ(a->Stats().queries, 1u);
  EXPECT_EQ(b->Stats().queries, 0u);
}

TEST(ServingEngineTest, CacheDisabledStillServes) {
  ServingEngineOptions options;
  options.cache_capacity = 0;
  auto engine = MakeEngine(options);
  auto a = engine->Recommend({1, 2}, 5);
  auto b = engine->Recommend({1, 2}, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(engine->Stats().cache.hits, 0u);
  EXPECT_EQ(engine->Stats().batches, 2u);
}

TEST(ServingEngineTest, SubmitMatchesSyncRecommend) {
  auto engine = MakeEngine();
  auto expected = engine->Recommend({2, 4, 6}, 8);
  ASSERT_TRUE(expected.ok());
  auto future = engine->Submit({6, 4, 2, 2}, 8);  // same canonical query
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, *expected);
}

TEST(ServingEngineTest, SubmitRejectsMalformedImmediately) {
  auto engine = MakeEngine();
  EXPECT_EQ(engine->Submit({}, 5).get().status().code(),
            smgcn::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->Submit({-3}, 5).get().status().code(),
            smgcn::StatusCode::kInvalidArgument);
}

TEST(ServingEngineTest, ConcurrentSubmitsFromManyThreads) {
  ServingEngineOptions options;
  options.max_batch_size = 16;
  options.max_wait_ms = 0.5;
  auto engine = MakeEngine(options);

  // Ground truth computed via the synchronous path first.
  std::vector<std::vector<int>> queries;
  std::vector<std::vector<std::size_t>> expected;
  for (int i = 0; i < 24; ++i) {
    queries.push_back({i % 24, (i * 7 + 1) % 24, (i * 3 + 2) % 24});
    auto top = engine->Recommend(queries.back(), 10);
    ASSERT_TRUE(top.ok());
    expected.push_back(*top);
  }

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::future<Result<std::vector<std::size_t>>>> futures;
      for (int i = 0; i < kPerThread; ++i) {
        const auto& q = queries[(t * kPerThread + i) % queries.size()];
        futures.push_back(engine->Submit(q, 10));
      }
      for (int i = 0; i < kPerThread; ++i) {
        auto result = futures[i].get();
        const auto& want = expected[(t * kPerThread + i) % expected.size()];
        if (!result.ok() || *result != want) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServingStatsSnapshot stats = engine->Stats();
  EXPECT_GE(stats.queries, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GT(stats.cache.hits, 0u);  // repeats must hit the cache
}

TEST(ServingEngineTest, ScoreBatchHammeredUnderParallelKernels) {
  // Cache + stats audit under the multi-threaded kernels: a deliberately
  // tiny sharded cache (constant evictions) is hammered by sync ScoreBatch,
  // RecommendBatch and async Submit from several threads while the tensor
  // kernels themselves fan out across the process-wide parallel pool.
  parallel::SetNumThreads(4);
  ServingEngineOptions options;
  options.max_batch_size = 8;
  options.max_wait_ms = 0.1;
  options.num_threads = 3;
  options.cache_capacity = 6;  // forces eviction churn
  options.cache_shards = 2;
  auto engine = MakeEngine(options);

  std::vector<std::vector<int>> queries;
  std::vector<std::vector<double>> expected_scores;
  std::vector<std::vector<std::size_t>> expected_topk;
  for (int i = 0; i < 16; ++i) {
    queries.push_back({i % 24, (i * 5 + 3) % 24});
    auto scores = engine->Score(queries.back());
    ASSERT_TRUE(scores.ok());
    expected_scores.push_back(*scores);
    auto top = engine->Recommend(queries.back(), 6);
    ASSERT_TRUE(top.ok());
    expected_topk.push_back(*top);
  }

  constexpr int kThreads = 6;
  constexpr int kIters = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t base = static_cast<std::size_t>(t * kIters + i);
        const std::vector<std::vector<int>> batch = {
            queries[base % queries.size()], queries[(base + 5) % queries.size()],
            queries[(base + 11) % queries.size()]};
        if (i % 3 == 0) {
          auto scores = engine->ScoreBatch(batch);
          if (!scores.ok() || (*scores)[0] != expected_scores[base % queries.size()]) {
            mismatches.fetch_add(1);
            continue;
          }
        } else if (i % 3 == 1) {
          auto top = engine->RecommendBatch(batch, 6);
          if (!top.ok() || (*top)[0] != expected_topk[base % queries.size()]) {
            mismatches.fetch_add(1);
          }
        } else {
          auto future = engine->Submit(batch[0], 6);
          auto top = future.get();
          if (!top.ok() || *top != expected_topk[base % queries.size()]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServingStatsSnapshot stats = engine->Stats();
  // Counter coherence across shards: every lookup is either a hit or a miss,
  // occupancy never exceeds the budget, and churn actually happened.
  EXPECT_GT(stats.cache.misses, 0u);
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_LE(stats.cache.size, stats.cache.capacity);
  EXPECT_LE(stats.cache.evictions, stats.cache.misses);
  EXPECT_GE(stats.queries, static_cast<std::uint64_t>(kThreads * kIters));
  parallel::SetNumThreads(1);
}

TEST(ServingEngineTest, MicroBatcherCoalesces) {
  ServingEngineOptions options;
  options.max_batch_size = 64;
  options.max_wait_ms = 20.0;  // generous window so the queue fills up
  options.cache_capacity = 0;  // force every query through the GEMM
  auto engine = MakeEngine(options);
  std::vector<std::future<Result<std::vector<std::size_t>>>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(engine->Submit({i % 24, (i + 1) % 24}, 5));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  const ServingStatsSnapshot stats = engine->Stats();
  // 32 queries must have shared GEMMs: far fewer batches than queries.
  EXPECT_LT(stats.batches, 32u);
  EXPECT_GT(stats.mean_batch_size, 1.0);
}

TEST(ServingEngineTest, ShutdownDrainsQueuedQueries) {
  ServingEngineOptions options;
  options.max_wait_ms = 50.0;  // queries would linger without the drain
  auto engine = MakeEngine(options);
  std::vector<std::future<Result<std::vector<std::size_t>>>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(engine->Submit({i % 24}, 5));
  }
  engine->Shutdown();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  // After shutdown, new queries fail fast.
  EXPECT_EQ(engine->Submit({1}, 5).get().status().code(),
            smgcn::StatusCode::kFailedPrecondition);
}

TEST(ServingEngineTest, DestructorDrainsImplicitly) {
  std::future<Result<std::vector<std::size_t>>> future;
  {
    auto engine = MakeEngine();
    future = engine->Submit({1, 2}, 5);
  }  // ~ServingEngine must resolve the future
  EXPECT_TRUE(future.get().ok());
}

// --------------------------------------------------------------------------
// EngineRecommender adapter
// --------------------------------------------------------------------------

TEST(EngineRecommenderTest, OverridesBatchPathAndMatchesBase) {
  core::InferenceCheckpoint ckpt = MakeCheckpoint();
  auto reference = core::CheckpointRecommender::FromCheckpoint(ckpt);
  ASSERT_TRUE(reference.ok());
  auto engine = ServingEngine::Create(std::move(ckpt));
  ASSERT_TRUE(engine.ok());
  EngineRecommender recommender(engine->get());

  EXPECT_EQ(recommender.name(), "test-ckpt");
  EXPECT_EQ(recommender.Fit(data::Corpus()).code(),
            smgcn::StatusCode::kFailedPrecondition);

  const std::vector<std::vector<int>> queries = {{1, 2}, {5, 9, 13}};
  // The base-class default loops Score; the adapter fuses one GEMM. Both
  // must agree with the checkpoint recommender (bit-identical rows).
  auto fused = recommender.ScoreBatch(queries);
  auto looped = reference->ScoreBatch(queries);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(looped.ok());
  EXPECT_EQ(*fused, *looped);

  // Top-k through the inherited Recommend() convenience.
  auto top = recommender.Recommend({1, 2}, 5);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 5u);
}

// --------------------------------------------------------------------------
// Slow-query log
// --------------------------------------------------------------------------

TEST(SlowQueryLogTest, DisabledByDefault) {
  auto engine = MakeEngine();
  EXPECT_FALSE(engine->slow_query_log().enabled());
  ASSERT_TRUE(engine->Recommend({1, 2, 3}, 5).ok());
  EXPECT_EQ(engine->slow_query_log().total_recorded(), 0u);
  EXPECT_TRUE(engine->slow_query_log().Snapshot().empty());
}

TEST(SlowQueryLogTest, NegativeThresholdIsRejected) {
  ServingEngineOptions options;
  options.slow_query_threshold_ms = -1.0;
  EXPECT_EQ(ServingEngine::Create(MakeCheckpoint(), options).status().code(),
            smgcn::StatusCode::kInvalidArgument);
}

TEST(SlowQueryLogTest, SyncQueriesRecordStageBreakdown) {
  ServingEngineOptions options;
  options.slow_query_threshold_ms = 1e-6;  // everything is "slow"
  options.cache_capacity = 4;
  auto engine = MakeEngine(options);
  ASSERT_TRUE(engine->slow_query_log().enabled());
  ASSERT_TRUE(engine->RecommendBatch({{1, 2}, {3, 4, 5}}, 7).ok());
  ASSERT_TRUE(engine->Recommend({1, 2}, 7).ok());  // cache hit

  const auto records = engine->slow_query_log().Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(engine->slow_query_log().total_recorded(), 3u);
  for (const SlowQueryRecord& record : records) {
    EXPECT_EQ(record.k, 7u);
    EXPECT_GT(record.total_seconds, 0.0);
    EXPECT_GE(record.batch_size, 1u);
    // Sync path: the query never sat in the async queue.
    EXPECT_EQ(record.queue_seconds, 0.0);
    EXPECT_EQ(record.coalesce_seconds, 0.0);
    EXPECT_FALSE(record.ToString().empty());
  }
  EXPECT_FALSE(records[0].cache_hit);
  EXPECT_TRUE(records[2].cache_hit);
  EXPECT_GT(records[0].gemm_seconds + records[0].topk_seconds, 0.0);
  EXPECT_EQ(records[2].gemm_seconds, 0.0);  // hits skip the GEMM
  EXPECT_NE(engine->slow_query_log().RenderMarkdown().find("| total |"),
            std::string::npos);
}

TEST(SlowQueryLogTest, AsyncQueriesRecordQueueAndBatch) {
  ServingEngineOptions options;
  options.slow_query_threshold_ms = 1e-6;
  options.cache_capacity = 0;  // force every query through the GEMM
  options.max_batch_size = 64;
  options.max_wait_ms = 10.0;  // encourage coalescing
  auto engine = MakeEngine(options);
  std::vector<std::future<Result<std::vector<std::size_t>>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(engine->Submit({i % 24, (i + 3) % 24}, 5));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  engine->Shutdown();

  const auto records = engine->slow_query_log().Snapshot();
  ASSERT_EQ(records.size(), 16u);
  bool saw_coalesced_batch = false;
  for (const SlowQueryRecord& record : records) {
    EXPECT_GE(record.queue_seconds, 0.0);
    EXPECT_GE(record.coalesce_seconds, 0.0);
    EXPECT_GE(record.total_seconds,
              record.gemm_seconds + record.topk_seconds);
    if (record.batch_size > 1) saw_coalesced_batch = true;
  }
  EXPECT_TRUE(saw_coalesced_batch);
}

TEST(SlowQueryLogTest, EvictsOldestBeyondCapacity) {
  ServingEngineOptions options;
  options.slow_query_threshold_ms = 1e-6;
  options.slow_query_log_capacity = 4;
  options.cache_capacity = 0;
  auto engine = MakeEngine(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->Recommend({i % 24, (i + 1) % 24}, 5).ok());
  }
  EXPECT_EQ(engine->slow_query_log().Snapshot().size(), 4u);
  EXPECT_EQ(engine->slow_query_log().total_recorded(), 10u);
}

// --------------------------------------------------------------------------
// Deprecated threading knobs
// --------------------------------------------------------------------------

TEST(ServingEngineTest, DeprecatedThreadKnobsWarnExactlyOncePerKnob) {
  // The warnings deduplicate process-wide, and an earlier test in this
  // binary already constructs an engine with num_threads set — so only
  // kernel_threads (used nowhere else) can be asserted exactly-once here;
  // num_threads is asserted at-most-once (the dedup property itself).
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel level, const std::string& line) {
    if (level == LogLevel::kWarning) captured.push_back(line);
  });
  ServingEngineOptions options;
  options.num_threads = 2;
  options.kernel_threads = 2;
  for (int round = 0; round < 2; ++round) {
    auto engine = MakeEngine(options);
    ASSERT_TRUE(engine->Recommend({1, 2}, 5).ok());
  }
  SetLogSink(nullptr);
  std::size_t num_threads_lines = 0;
  std::size_t kernel_threads_lines = 0;
  for (const std::string& line : captured) {
    if (line.find("ServingEngineOptions::num_threads is deprecated") !=
        std::string::npos) {
      ++num_threads_lines;
    }
    if (line.find("ServingEngineOptions::kernel_threads is deprecated") !=
        std::string::npos) {
      ++kernel_threads_lines;
    }
  }
  EXPECT_LE(num_threads_lines, 1u);
  EXPECT_EQ(kernel_threads_lines, 1u);
}

// --------------------------------------------------------------------------
// Hot swap (ServingEngine::Publish)
// --------------------------------------------------------------------------

TEST(ServingEngineSwapTest, PublishSwapsScoresAndVersion) {
  auto engine = MakeEngine();
  EXPECT_EQ(engine->active_version(), "v1");
  auto before = engine->Score({1, 2});
  ASSERT_TRUE(before.ok());

  // A different model: same shapes, shifted embeddings.
  core::InferenceCheckpoint next = MakeCheckpoint();
  for (std::size_t r = 0; r < next.herb_embeddings.rows(); ++r) {
    for (std::size_t c = 0; c < next.herb_embeddings.cols(); ++c) {
      next.herb_embeddings(r, c) += 1.0;
    }
  }
  ASSERT_TRUE(engine->Publish(std::move(next), "v2").ok());
  EXPECT_EQ(engine->active_version(), "v2");

  auto after = engine->Score({1, 2});
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*before, *after);
  EXPECT_EQ(engine->Snapshot()->version, "v2");
}

TEST(ServingEngineSwapTest, PublishRejectsBadInput) {
  auto engine = MakeEngine();
  EXPECT_EQ(engine->Publish(MakeCheckpoint(), "").code(),
            smgcn::StatusCode::kInvalidArgument);
  core::InferenceCheckpoint bad;  // empty: fails validation
  EXPECT_FALSE(engine->Publish(std::move(bad), "v2").ok());
  // Failed publishes leave the active snapshot untouched.
  EXPECT_EQ(engine->active_version(), "v1");
}

TEST(ServingEngineSwapTest, CacheEntriesAreScopedToTheirPublish) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->Recommend({1, 2, 3}, 10).ok());
  ASSERT_TRUE(engine->Publish(MakeCheckpoint(12, 40, 8), "v2").ok());
  // Same query, new snapshot: the v1 cache entry must not answer it.
  ASSERT_TRUE(engine->Recommend({1, 2, 3}, 10).ok());
  const ServingStatsSnapshot stats = engine->Stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 2u);
}

TEST(ServingEngineSwapTest, PublishCountsInRegistry) {
  auto engine = MakeEngine();
  const std::string counter = engine->obs_prefix() + "publishes";
  auto* publishes = obs::Registry::Global().GetCounter(counter);
  EXPECT_EQ(publishes->value(), 0u);
  ASSERT_TRUE(engine->Publish(MakeCheckpoint(), "v2").ok());
  ASSERT_TRUE(engine->Publish(MakeCheckpoint(), "v3").ok());
  EXPECT_EQ(publishes->value(), 2u);
}

TEST(ServingEngineSwapTest, InFlightSubmitsFinishOnTheirSnapshot) {
  // Queries submitted before a swap must be answered by the snapshot they
  // were accepted under, even when the batcher executes them after the
  // publish landed.
  ServingEngineOptions options;
  options.max_wait_ms = 20.0;  // hold batches long enough to swap mid-flight
  options.max_batch_size = 64;
  options.cache_capacity = 0;
  auto engine = MakeEngine(options);

  auto expected = engine->Recommend({2, 4}, 5);
  ASSERT_TRUE(expected.ok());

  std::vector<std::future<Result<std::vector<std::size_t>>>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine->Submit({2, 4}, 5));
  ASSERT_TRUE(engine->Publish(MakeCheckpoint(12, 40, 8), "v2").ok());
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(*result, *expected);
  }
  // New queries see the new model's herb count (40 stays, but ids shrink
  // to the 12-symptom vocabulary: symptom 20 is now out of range).
  EXPECT_EQ(engine->Recommend({20}, 5).status().code(),
            smgcn::StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Serving status vocabulary (serve::StatusCode) and the mapping table
// --------------------------------------------------------------------------

TEST(ServeStatusTest, WireBytesArePinned) {
  // The numeric values ARE the wire protocol; this test is the tripwire
  // against reordering the enum.
  EXPECT_EQ(ToWireByte(StatusCode::kOk), 0);
  EXPECT_EQ(ToWireByte(StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(ToWireByte(StatusCode::kDeadlineExceeded), 2);
  EXPECT_EQ(ToWireByte(StatusCode::kShedding), 3);
  EXPECT_EQ(ToWireByte(StatusCode::kUnavailable), 4);
  EXPECT_EQ(kMaxWireStatusByte, 4);
  EXPECT_FALSE(FromWireByte(5).ok());
}

TEST(ServeStatusTest, NamesRoundTrip) {
  for (std::uint8_t b = 0; b <= kMaxWireStatusByte; ++b) {
    const auto code = static_cast<StatusCode>(b);
    auto back = StatusCodeFromName(StatusCodeName(code));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, code);
    auto byte_back = FromWireByte(ToWireByte(code));
    ASSERT_TRUE(byte_back.ok());
    EXPECT_EQ(*byte_back, code);
  }
  EXPECT_FALSE(StatusCodeFromName("NOT_A_STATUS").ok());
}

TEST(ServeStatusTest, EveryInternalCodeMapsAndRoundTrips) {
  // The mapping table is total: every internal code lands on exactly one
  // serving status, and mapping back yields an internal status that maps
  // to the same serving status (the round trip the wire relies on).
  const smgcn::StatusCode internal_codes[] = {
      smgcn::StatusCode::kOk,
      smgcn::StatusCode::kInvalidArgument,
      smgcn::StatusCode::kNotFound,
      smgcn::StatusCode::kAlreadyExists,
      smgcn::StatusCode::kOutOfRange,
      smgcn::StatusCode::kFailedPrecondition,
      smgcn::StatusCode::kIoError,
      smgcn::StatusCode::kNotImplemented,
      smgcn::StatusCode::kInternal,
      smgcn::StatusCode::kResourceExhausted,
      smgcn::StatusCode::kDeadlineExceeded,
      smgcn::StatusCode::kUnavailable,
  };
  for (const auto internal : internal_codes) {
    const StatusCode serving = FromInternalCode(internal);
    EXPECT_LE(ToWireByte(serving), kMaxWireStatusByte);
    const Status back = ToInternalStatus(serving, "msg");
    EXPECT_EQ(FromInternalCode(back.code()), serving)
        << "round trip broke for " << StatusCodeToString(internal);
  }
  // Spot-check the semantically load-bearing rows.
  EXPECT_EQ(FromInternalCode(smgcn::StatusCode::kOk), StatusCode::kOk);
  EXPECT_EQ(FromInternalCode(smgcn::StatusCode::kResourceExhausted),
            StatusCode::kShedding);
  EXPECT_EQ(FromInternalCode(smgcn::StatusCode::kDeadlineExceeded),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(FromInternalCode(smgcn::StatusCode::kFailedPrecondition),
            StatusCode::kUnavailable);
  EXPECT_EQ(ToInternalStatus(StatusCode::kShedding, "m").code(),
            smgcn::StatusCode::kResourceExhausted);
  // ToInternalStatus carries the message through (except kOk).
  EXPECT_EQ(ToInternalStatus(StatusCode::kUnavailable, "why").message(),
            "why");
  EXPECT_TRUE(ToInternalStatus(StatusCode::kOk, "ignored").ok());
}

TEST(ServeStatusTest, HttpStatusMapping) {
  EXPECT_EQ(HttpStatusFor(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kDeadlineExceeded), 504);
  EXPECT_EQ(HttpStatusFor(StatusCode::kShedding), 429);
  EXPECT_EQ(HttpStatusFor(StatusCode::kUnavailable), 503);
}

// --------------------------------------------------------------------------
// The unified Request/Response surface (Handle / HandleBatch /
// SubmitRequest) and the deprecated-but-honoured shims
// --------------------------------------------------------------------------

TEST(RequestSurfaceTest, DenseModeMatchesScoreBatchBitForBit) {
  auto engine = MakeEngine();
  const std::vector<std::vector<int>> queries = {{1, 2, 3}, {5}, {0, 23}};
  auto legacy = engine->ScoreBatch(queries);
  ASSERT_TRUE(legacy.ok());

  std::vector<Request> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].symptoms = queries[i];
    requests[i].top_k = 0;  // dense mode
  }
  const std::vector<Response> responses = engine->HandleBatch(requests);
  ASSERT_EQ(responses.size(), queries.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].message;
    EXPECT_EQ(responses[i].model, "test-ckpt");
    EXPECT_EQ(responses[i].version, "v1");
    ASSERT_EQ(responses[i].scores.size(), (*legacy)[i].size());
    for (std::size_t h = 0; h < responses[i].scores.size(); ++h) {
      // Bit-identical, not approximately equal: both paths run the same
      // fixed-order kernels on the same snapshot.
      EXPECT_EQ(responses[i].scores[h], (*legacy)[i][h]);
    }
  }
}

TEST(RequestSurfaceTest, RankedModeMatchesRecommend) {
  auto engine = MakeEngine();
  auto legacy = engine->Recommend({2, 4, 6}, 7);
  ASSERT_TRUE(legacy.ok());

  Request request;
  request.symptoms = {2, 4, 6};
  request.top_k = 7;
  const Response response = engine->Handle(request);
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_EQ(response.herb_ids, *legacy);
  EXPECT_TRUE(response.scores.empty());
}

TEST(RequestSurfaceTest, SubmitShimMatchesSubmitRequest) {
  auto engine = MakeEngine();
  auto legacy = engine->Submit({3, 9}, 5).get();
  ASSERT_TRUE(legacy.ok());

  Request request;
  request.symptoms = {3, 9};
  request.top_k = 5;
  const Response response = engine->SubmitRequest(std::move(request)).get();
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_EQ(response.herb_ids, *legacy);
  EXPECT_EQ(response.version, "v1");
}

TEST(RequestSurfaceTest, InvalidRequestsGetPerRequestErrors) {
  auto engine = MakeEngine();
  std::vector<Request> requests(3);
  requests[0].symptoms = {1, 2};
  requests[0].top_k = 5;
  requests[1].symptoms = {};  // empty: invalid
  requests[1].top_k = 5;
  requests[2].symptoms = {999};  // out of range
  requests[2].top_k = 5;
  const auto responses = engine->HandleBatch(requests);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[1].status, StatusCode::kInvalidArgument);
  EXPECT_EQ(responses[2].status, StatusCode::kInvalidArgument);
  EXPECT_FALSE(responses[2].message.empty());
  // Errors are attributable: routing succeeded, so model/version are set.
  EXPECT_EQ(responses[1].model, "test-ckpt");
}

TEST(RequestSurfaceTest, VersionPinGuardsAcrossSwaps) {
  auto engine = MakeEngine();
  Request pinned;
  pinned.symptoms = {1, 2};
  pinned.top_k = 5;
  pinned.version = "v1";
  EXPECT_TRUE(engine->Handle(pinned).ok());

  ASSERT_TRUE(engine->Publish(MakeCheckpoint(), "v2").ok());
  const Response stale = engine->Handle(pinned);
  EXPECT_EQ(stale.status, StatusCode::kUnavailable);
  EXPECT_NE(stale.message.find("v1"), std::string::npos);

  pinned.version = "v2";
  EXPECT_TRUE(engine->Handle(pinned).ok());

  // Async path enforces the same guard.
  pinned.version = "v1";
  EXPECT_EQ(engine->SubmitRequest(pinned).get().status,
            StatusCode::kUnavailable);

  Request wrong_model = pinned;
  wrong_model.version.clear();
  wrong_model.model = "other-model";
  EXPECT_EQ(engine->Handle(wrong_model).status, StatusCode::kUnavailable);
}

TEST(RequestSurfaceTest, AsyncRejectsDenseMode) {
  auto engine = MakeEngine();
  Request request;
  request.symptoms = {1};
  request.top_k = 0;
  const Response response = engine->SubmitRequest(std::move(request)).get();
  EXPECT_EQ(response.status, StatusCode::kInvalidArgument);
  EXPECT_NE(response.message.find("synchronous"), std::string::npos);
}

TEST(RequestSurfaceTest, SyncDeadlineNeverReturnsLateOk) {
  auto engine = MakeEngine();
  Request request;
  request.symptoms = {1, 2};
  request.top_k = 5;
  request.deadline_ms = 1e-7;  // sub-nanosecond budget: always exceeded
  const Response response = engine->Handle(request);
  EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.herb_ids.empty());
}

TEST(RequestSurfaceTest, AsyncDeadlineExpiredBeforeBatchingIsSwept) {
  ServingEngineOptions options;
  options.max_wait_ms = 50.0;  // would hold the batch well past the budget
  auto engine = MakeEngine(options);
  Request request;
  request.symptoms = {1, 2};
  request.top_k = 5;
  request.deadline_ms = 1e-7;
  const Response response = engine->SubmitRequest(std::move(request)).get();
  EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.herb_ids.empty());
}

TEST(RequestSurfaceTest, FeasibleDeadlineIsServedNotShed) {
  ServingEngineOptions options;
  options.max_wait_ms = 5000.0;  // batcher would idle far past the budget...
  auto engine = MakeEngine(options);
  Request request;
  request.symptoms = {1, 2};
  request.top_k = 5;
  request.deadline_ms = 500.0;  // ...but the deadline flushes it early
  const auto start = std::chrono::steady_clock::now();
  const Response response = engine->SubmitRequest(std::move(request)).get();
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(response.ok()) << response.message;
  EXPECT_LT(waited, 2.0);  // answered within the budget, not max_wait
}

TEST(RequestSurfaceTest, FullQueueShedsWithSheddingStatus) {
  ServingEngineOptions options;
  options.max_batch_size = 64;
  options.max_wait_ms = 400.0;  // hold the queue so the burst backs up
  options.max_queue_depth = 2;
  options.cache_capacity = 0;
  auto engine = MakeEngine(options);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i) {
    Request request;
    request.symptoms = {1, 2};
    request.top_k = 5;
    futures.push_back(engine->SubmitRequest(std::move(request)));
  }
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (auto& f : futures) {
    const Response response = f.get();
    if (response.ok()) {
      ++ok;
    } else {
      // Shedding, not a timeout and not a generic failure: clients must be
      // able to tell "back off" from "broken".
      ASSERT_EQ(response.status, StatusCode::kShedding) << response.message;
      ++shed;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(shed, 8u);

  // The legacy Submit shim rides the same bounded queue and reports the
  // internal spelling of the same status.
  auto legacy = engine->Submit({1, 2}, 5);
  auto result = legacy.get();
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), smgcn::StatusCode::kResourceExhausted);
  }
}

TEST(RequestSurfaceTest, ShedRequestsCountInObsRegistry) {
  ServingEngineOptions options;
  options.max_batch_size = 64;
  options.max_wait_ms = 300.0;
  options.max_queue_depth = 1;
  auto engine = MakeEngine(options);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    Request request;
    request.symptoms = {1};
    request.top_k = 3;
    futures.push_back(engine->SubmitRequest(std::move(request)));
  }
  for (auto& f : futures) f.get();
  const auto* shed = obs::Registry::Global().GetCounter(
      engine->obs_prefix() + "shed");
  EXPECT_EQ(shed->value(), 3u);
}

TEST(RequestSurfaceTest, DeprecatedShimsWarnAtMostOncePerEntryPoint) {
  // LogWarningOnce keys are process-global, so earlier tests may already
  // have consumed the single warning; what this asserts is the dedup: many
  // calls never produce a second line per entry point.
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel level, const std::string& line) {
    if (level == LogLevel::kWarning) captured.push_back(line);
  });
  auto engine = MakeEngine();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine->ScoreBatch({{1, 2}}).ok());
    ASSERT_TRUE(engine->RecommendBatch({{1, 2}}, 5).ok());
    ASSERT_TRUE(engine->Score({1, 2}).ok());
    ASSERT_TRUE(engine->Recommend({1, 2}, 5).ok());
    ASSERT_TRUE(engine->Submit({1, 2}, 5).get().ok());
  }
  SetLogSink(nullptr);
  for (const char* key :
       {"ServingEngine::ScoreBatch is deprecated",
        "ServingEngine::RecommendBatch is deprecated",
        "ServingEngine::Score is deprecated",
        "ServingEngine::Recommend is deprecated",
        "ServingEngine::Submit is deprecated"}) {
    std::size_t count = 0;
    for (const std::string& line : captured) {
      if (line.find(key) != std::string::npos) ++count;
    }
    EXPECT_LE(count, 1u) << key;
  }
}

TEST(RequestSurfaceTest, ShutdownDrainAnswersQueuedRequests) {
  ServingEngineOptions options;
  options.max_wait_ms = 200.0;
  options.max_batch_size = 64;
  auto engine = MakeEngine(options);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 16; ++i) {
    Request request;
    request.symptoms = {1, 2, 3};
    request.top_k = 5;
    futures.push_back(engine->SubmitRequest(std::move(request)));
  }
  engine->Shutdown();  // drain: everything admitted is answered
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
  Request late;
  late.symptoms = {1};
  late.top_k = 5;
  EXPECT_EQ(engine->SubmitRequest(std::move(late)).get().status,
            StatusCode::kUnavailable);
}

// --------------------------------------------------------------------------
// Score attribution (audit trail)
// --------------------------------------------------------------------------

// Asserts the two attribution identities hold bit-exactly and that the
// attribution describes exactly the served ranking.
void CheckAttributionInvariants(const Response& response,
                                const std::vector<int>& canonical_symptoms) {
  ASSERT_TRUE(response.attribution.has_value());
  const audit::QueryAttribution& attr = *response.attribution;
  EXPECT_EQ(attr.symptom_ids, canonical_symptoms);
  ASSERT_EQ(attr.herbs.size(), response.herb_ids.size());
  for (std::size_t i = 0; i < attr.herbs.size(); ++i) {
    const audit::HerbAttribution& herb = attr.herbs[i];
    EXPECT_EQ(herb.herb_id, response.herb_ids[i]);
    EXPECT_TRUE(herb.exact);
    ASSERT_EQ(herb.per_symptom.size(), canonical_symptoms.size());
    // Residual-anchored: both reconstructions land on the served double
    // exactly, at every precision.
    EXPECT_EQ(herb.bipar + herb.synergy, herb.score);
    EXPECT_EQ(audit::ReconstructPooled(herb), herb.score);
  }
}

// The acceptance-criteria parity test: one walk over all three precisions,
// 1 and 4 threads, and every serving path (sync per-query, sync batched,
// cache-hit repeat, async micro-batched). The attribution must satisfy the
// reconstruction identities everywhere and be bit-identical across paths
// and thread counts (row independence).
TEST(AttributionTest, ParityAcrossPrecisionsPathsAndThreads) {
  const std::vector<int> symptoms = {6, 2, 4, 2};     // canonical: {2,4,6}
  const std::vector<int> canonical = {2, 4, 6};
  constexpr std::size_t kTopK = 7;
  for (const tensor::Precision precision :
       {tensor::Precision::kFloat64, tensor::Precision::kFloat32,
        tensor::Precision::kInt8}) {
    // herbs[path][thread-config] collected for cross-path comparison.
    std::vector<std::vector<audit::HerbAttribution>> collected;
    for (const int threads : {1, 4}) {
      parallel::SetNumThreads(threads);
      ServingEngineOptions options;
      options.precision = precision;
      auto engine = ServingEngine::Create(
          MakeCheckpoint(24, 40, 8, /*with_si_mlp=*/true,
                         /*with_herb_bipar=*/true),
          options);
      ASSERT_TRUE(engine.ok()) << engine.status();

      Request request;
      request.symptoms = symptoms;
      request.top_k = kTopK;
      request.attribution = true;

      // Path 1: sync per-query (cache miss).
      const Response sync = (*engine)->Handle(request);
      ASSERT_TRUE(sync.ok()) << sync.message;
      CheckAttributionInvariants(sync, canonical);

      // The served scores are the dense scores for the same query: the
      // attribution decomposes exactly what the ranking saw.
      auto dense = (*engine)->Score(symptoms);
      ASSERT_TRUE(dense.ok());
      for (const audit::HerbAttribution& herb : sync.attribution->herbs) {
        EXPECT_EQ(herb.score, (*dense)[herb.herb_id]);
        EXPECT_TRUE(herb.has_components);
        // With components the split is informative: the bipar term is not
        // just the whole score.
        EXPECT_NE(herb.synergy, 0.0);
      }

      // Path 2: cache-hit repeat of the same query.
      const Response cached = (*engine)->Handle(request);
      ASSERT_TRUE(cached.ok());
      CheckAttributionInvariants(cached, canonical);

      // Path 3: batched alongside unrelated queries.
      std::vector<Request> batch(3);
      batch[0].symptoms = {1, 9};
      batch[0].top_k = kTopK;
      batch[1] = request;
      batch[2].symptoms = {0, 23, 11};
      batch[2].top_k = kTopK;
      const std::vector<Response> batched = (*engine)->HandleBatch(batch);
      ASSERT_TRUE(batched[1].ok());
      CheckAttributionInvariants(batched[1], canonical);
      EXPECT_FALSE(batched[0].attribution.has_value());  // not requested

      // Path 4: async micro-batched.
      Request async_request = request;
      const Response async =
          (*engine)->SubmitRequest(std::move(async_request)).get();
      ASSERT_TRUE(async.ok()) << async.message;
      CheckAttributionInvariants(async, canonical);

      collected.push_back(sync.attribution->herbs);
      collected.push_back(cached.attribution->herbs);
      collected.push_back(batched[1].attribution->herbs);
      collected.push_back(async.attribution->herbs);
    }
    // Every path at every thread count produced bit-identical terms.
    for (std::size_t p = 1; p < collected.size(); ++p) {
      ASSERT_EQ(collected[p].size(), collected[0].size());
      for (std::size_t i = 0; i < collected[0].size(); ++i) {
        const audit::HerbAttribution& a = collected[0][i];
        const audit::HerbAttribution& b = collected[p][i];
        EXPECT_EQ(a.herb_id, b.herb_id) << "path " << p;
        EXPECT_EQ(a.score, b.score) << "path " << p;
        EXPECT_EQ(a.bipar, b.bipar) << "path " << p;
        EXPECT_EQ(a.synergy, b.synergy) << "path " << p;
        EXPECT_EQ(a.pool_bias, b.pool_bias) << "path " << p;
        EXPECT_EQ(a.pool_residual, b.pool_residual) << "path " << p;
        EXPECT_EQ(a.per_symptom, b.per_symptom) << "path " << p;
      }
    }
  }
  parallel::SetNumThreads(1);
}

TEST(AttributionTest, F64MatchesCheckpointReference) {
  // The store's f64 attribution is bit-identical to the checkpoint-level
  // reference implementation (both accumulate ascending-k from zero).
  auto ckpt = MakeCheckpoint(24, 40, 8, true, /*with_herb_bipar=*/true);
  core::InferenceCheckpoint reference_copy = ckpt;
  auto engine = ServingEngine::Create(std::move(ckpt));
  ASSERT_TRUE(engine.ok());
  Request request;
  request.symptoms = {2, 4, 6};
  request.top_k = 5;
  request.attribution = true;
  const Response response = (*engine)->Handle(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.attribution.has_value());

  auto reference = audit::AttributeFromCheckpoint(reference_copy, {2, 4, 6},
                                                  response.herb_ids);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_EQ(reference->herbs.size(), response.attribution->herbs.size());
  for (std::size_t i = 0; i < reference->herbs.size(); ++i) {
    const audit::HerbAttribution& expected = reference->herbs[i];
    const audit::HerbAttribution& got = response.attribution->herbs[i];
    EXPECT_EQ(got.score, expected.score);
    EXPECT_EQ(got.bipar, expected.bipar);
    EXPECT_EQ(got.synergy, expected.synergy);
    EXPECT_EQ(got.pool_bias, expected.pool_bias);
    EXPECT_EQ(got.pool_residual, expected.pool_residual);
    EXPECT_EQ(got.per_symptom, expected.per_symptom);
  }
}

TEST(AttributionTest, WithoutBiparTableFallsBackToWholeScore) {
  auto engine = ServingEngine::Create(
      MakeCheckpoint(24, 40, 8, true, /*with_herb_bipar=*/false));
  ASSERT_TRUE(engine.ok());
  Request request;
  request.symptoms = {1, 3};
  request.top_k = 5;
  request.attribution = true;
  const Response response = (*engine)->Handle(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.attribution.has_value());
  for (const audit::HerbAttribution& herb : response.attribution->herbs) {
    EXPECT_FALSE(herb.has_components);
    EXPECT_EQ(herb.bipar, herb.score);
    EXPECT_EQ(herb.synergy, 0.0);
    EXPECT_EQ(audit::ReconstructPooled(herb), herb.score);
  }
}

TEST(AttributionTest, RequestIdMintedEchoedAndSlowLogged) {
  ServingEngineOptions options;
  options.slow_query_threshold_ms = 1e-9;  // everything is "slow"
  options.slow_query_log_capacity = 16;
  auto engine = ServingEngine::Create(
      MakeCheckpoint(24, 40, 8, true, true), options);
  ASSERT_TRUE(engine.ok());

  // Client-supplied id is echoed on the sync path...
  Request request;
  request.symptoms = {2, 4};
  request.top_k = 5;
  request.request_id = "client-id-7";
  const Response echoed = (*engine)->Handle(request);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed.request_id, "client-id-7");

  // ...and minted when absent, on both paths.
  Request minted_req;
  minted_req.symptoms = {2, 4};
  minted_req.top_k = 5;
  const Response minted = (*engine)->Handle(minted_req);
  ASSERT_TRUE(minted.ok());
  EXPECT_FALSE(minted.request_id.empty());
  EXPECT_NE(minted.request_id, "client-id-7");
  Request async_req;
  async_req.symptoms = {1, 5};
  async_req.top_k = 5;
  async_req.request_id = "async-id-9";
  const Response async = (*engine)->SubmitRequest(std::move(async_req)).get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async.request_id, "async-id-9");

  // Minted ids are unique across requests.
  Request another;
  another.symptoms = {2, 4};
  another.top_k = 5;
  const Response minted2 = (*engine)->Handle(another);
  EXPECT_NE(minted2.request_id, minted.request_id);

  // The slow log carries the correlation id and the model/version.
  bool found = false;
  for (const SlowQueryRecord& record :
       (*engine)->slow_query_log().Snapshot()) {
    if (record.request_id == "client-id-7") {
      found = true;
      EXPECT_EQ(record.model, "test-ckpt");
      EXPECT_EQ(record.model_version, "v1");
      EXPECT_NE(record.ToString().find("id=client-id-7"), std::string::npos);
      EXPECT_NE(record.ToString().find("model=test-ckpt/v1"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AttributionTest, ErrorsAndDenseModeCarryNoAttribution) {
  auto engine = ServingEngine::Create(MakeCheckpoint(24, 40, 8, true, true));
  ASSERT_TRUE(engine.ok());
  // Invalid symptoms: error response still carries a request id.
  Request bad;
  bad.symptoms = {9999};
  bad.top_k = 5;
  bad.attribution = true;
  bad.request_id = "bad-1";
  const Response error = (*engine)->Handle(bad);
  EXPECT_FALSE(error.ok());
  EXPECT_FALSE(error.attribution.has_value());
  EXPECT_EQ(error.request_id, "bad-1");
  // Dense mode ignores the attribution flag (ranked-only contract).
  Request dense;
  dense.symptoms = {1, 2};
  dense.top_k = 0;
  dense.attribution = true;
  const Response scores = (*engine)->Handle(dense);
  ASSERT_TRUE(scores.ok());
  EXPECT_FALSE(scores.attribution.has_value());
}

}  // namespace
}  // namespace serve
}  // namespace smgcn
