// Unit tests for the dense Matrix type and its serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/matrix.h"
#include "src/tensor/matrix_io.h"
#include "src/util/random.h"

namespace smgcn {
namespace tensor {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FALSE(m.empty());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
  m.SetZero();
  EXPECT_DOUBLE_EQ(m.Sum(), 0.0);
  EXPECT_TRUE(Matrix().empty());
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  const Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye.Sum(), 3.0);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
}

TEST(MatrixTest, RowVector) {
  const Matrix v = Matrix::RowVector({1.0, 2.0, 3.0});
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 3u);
  EXPECT_DOUBLE_EQ(v(0, 2), 3.0);
}

TEST(MatrixTest, RandomUniformRespectsBounds) {
  Rng rng(1);
  const Matrix m = Matrix::RandomUniform(20, 20, -0.5, 0.5, &rng);
  EXPECT_GE(m.Min(), -0.5);
  EXPECT_LT(m.Max(), 0.5);
  EXPECT_NE(m.Min(), m.Max());
}

TEST(MatrixTest, ArithmeticOps) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{10.0, 20.0}, {30.0, 40.0}};
  EXPECT_EQ(a.Add(b), (Matrix{{11.0, 22.0}, {33.0, 44.0}}));
  EXPECT_EQ(b.Sub(a), (Matrix{{9.0, 18.0}, {27.0, 36.0}}));
  EXPECT_EQ(a.Mul(b), (Matrix{{10.0, 40.0}, {90.0, 160.0}}));
  EXPECT_EQ(a.Scale(2.0), (Matrix{{2.0, 4.0}, {6.0, 8.0}}));
}

TEST(MatrixTest, InPlaceOps) {
  Matrix a{{1.0, 2.0}};
  a.AddInPlace(Matrix{{1.0, 1.0}});
  EXPECT_EQ(a, (Matrix{{2.0, 3.0}}));
  a.AddScaled(Matrix{{1.0, 2.0}}, -2.0);
  EXPECT_EQ(a, (Matrix{{0.0, -1.0}}));
  a.ScaleInPlace(3.0);
  EXPECT_EQ(a, (Matrix{{0.0, -3.0}}));
  a.Apply([](double v) { return v + 1.0; });
  EXPECT_EQ(a, (Matrix{{1.0, -2.0}}));
}

TEST(MatrixTest, MatMulMatchesHandComputation) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  const Matrix c = a.MatMul(b);
  EXPECT_EQ(c, (Matrix{{58.0, 64.0}, {139.0, 154.0}}));
}

TEST(MatrixTest, MatMulIdentityIsNoop) {
  Rng rng(2);
  const Matrix a = Matrix::RandomNormal(4, 4, 0.0, 1.0, &rng);
  EXPECT_LT(a.MatMul(Matrix::Identity(4)).MaxAbsDiff(a), 1e-12);
}

TEST(MatrixTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(3);
  const Matrix a = Matrix::RandomNormal(5, 3, 0.0, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(5, 4, 0.0, 1.0, &rng);
  // a^T * b
  EXPECT_LT(a.TransposedMatMul(b).MaxAbsDiff(a.Transpose().MatMul(b)), 1e-12);
  const Matrix c = Matrix::RandomNormal(6, 3, 0.0, 1.0, &rng);
  // a * c^T
  EXPECT_LT(a.MatMulTransposed(c).MaxAbsDiff(a.MatMul(c.Transpose())), 1e-12);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(4);
  const Matrix a = Matrix::RandomNormal(3, 7, 0.0, 1.0, &rng);
  EXPECT_EQ(a.Transpose().Transpose(), a);
  EXPECT_EQ(a.Transpose().rows(), 7u);
}

TEST(MatrixTest, BlockedTransposeRoundTripsNonSquare) {
  // Shapes straddling the 32-entry tile edge: remainders on rows, columns,
  // both, and degenerate single-row/column cases.
  const std::size_t shapes[][2] = {{1, 97}, {97, 1},  {31, 33}, {32, 32},
                                   {33, 31}, {70, 130}, {128, 5}};
  Rng rng(41);
  for (const auto& shape : shapes) {
    const Matrix a = Matrix::RandomNormal(shape[0], shape[1], 0.0, 1.0, &rng);
    const Matrix t = a.Transpose();
    ASSERT_EQ(t.rows(), shape[1]);
    ASSERT_EQ(t.cols(), shape[0]);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t c = 0; c < a.cols(); ++c) {
        ASSERT_EQ(t(c, r), a(r, c)) << shape[0] << "x" << shape[1];
      }
    }
    EXPECT_EQ(t.Transpose(), a);
  }
}

TEST(MatrixTest, ConcatCols) {
  const Matrix a{{1.0}, {2.0}};
  const Matrix b{{3.0, 4.0}, {5.0, 6.0}};
  const Matrix c = a.ConcatCols(b);
  EXPECT_EQ(c, (Matrix{{1.0, 3.0, 4.0}, {2.0, 5.0, 6.0}}));
}

TEST(MatrixTest, Slices) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  EXPECT_EQ(m.SliceRows(1, 3), (Matrix{{4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}}));
  EXPECT_EQ(m.SliceCols(0, 2),
            (Matrix{{1.0, 2.0}, {4.0, 5.0}, {7.0, 8.0}}));
  EXPECT_EQ(m.SliceRows(1, 1).rows(), 0u);
}

TEST(MatrixTest, GatherRowsWithDuplicates) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix g = m.GatherRows({1, 0, 1});
  EXPECT_EQ(g, (Matrix{{3.0, 4.0}, {1.0, 2.0}, {3.0, 4.0}}));
}

TEST(MatrixTest, RowReductions) {
  const Matrix m{{1.0, 2.0}, {3.0, 6.0}};
  EXPECT_EQ(m.SumRows(), (Matrix{{4.0, 8.0}}));
  EXPECT_EQ(m.MeanRows(), (Matrix{{2.0, 4.0}}));
}

TEST(MatrixTest, ScalarReductions) {
  const Matrix m{{3.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.Sum(), -1.0);
  EXPECT_DOUBLE_EQ(m.Min(), -4.0);
  EXPECT_DOUBLE_EQ(m.Max(), 3.0);
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(m.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.Dot(Matrix{{2.0, 1.0}}), 2.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, AllFinite) {
  Matrix m{{1.0, 2.0}};
  EXPECT_TRUE(m.AllFinite());
  EXPECT_FALSE(m.HasNonFinite());
  m(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(m.AllFinite());
  EXPECT_TRUE(m.HasNonFinite());
  m(0, 0) = std::nan("");
  EXPECT_FALSE(m.AllFinite());
  EXPECT_TRUE(m.HasNonFinite());
}

// --------------------------------------------------------------------------
// NaN/Inf propagation through the GEMM kernels. The seed kernels skipped
// a == 0.0 terms unconditionally, so 0 * NaN (which must be NaN) was
// silently dropped and a poisoned embedding row could masquerade as a clean
// zero contribution; these are the regression tests for that fix.
// --------------------------------------------------------------------------

TEST(MatrixGemmNonFiniteTest, MatMulPropagatesNaNThroughZero) {
  // a(0, 1) == 0.0 pairs with b(1, j) == NaN: the product row must poison.
  Matrix a{{1.0, 0.0}, {2.0, 3.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  b(1, 0) = std::nan("");
  const Matrix out = a.MatMul(b);
  EXPECT_TRUE(std::isnan(out(0, 0)));  // 1*1 + 0*NaN
  EXPECT_TRUE(std::isnan(out(1, 0)));  // 2*1 + 3*NaN
  EXPECT_DOUBLE_EQ(out(0, 1), 1.0);    // finite column untouched
}

TEST(MatrixGemmNonFiniteTest, MatMulPropagatesInfThroughZero) {
  Matrix a{{1.0, 0.0}, {2.0, 3.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  b(1, 0) = std::numeric_limits<double>::infinity();
  const Matrix out = a.MatMul(b);
  EXPECT_TRUE(std::isnan(out(0, 0)));    // 1*1 + 0*Inf = 1 + NaN
  EXPECT_TRUE(std::isinf(out(1, 0)));    // 2*1 + 3*Inf
  EXPECT_DOUBLE_EQ(out(0, 1), 1.0);
}

TEST(MatrixGemmNonFiniteTest, TransposedMatMulPropagatesNaNThroughZero) {
  // this(r, c) == 0.0 pairs with other(r, j) == NaN; out row c must poison.
  Matrix a{{0.0, 5.0}, {1.0, 1.0}};
  Matrix b{{1.0}, {1.0}};
  b(0, 0) = std::nan("");
  const Matrix out = a.TransposedMatMul(b);  // a^T * b, 2x1
  EXPECT_TRUE(std::isnan(out(0, 0)));  // 0*NaN + 1*1
  EXPECT_TRUE(std::isnan(out(1, 0)));  // 5*NaN + 1*1
}

TEST(MatrixGemmNonFiniteTest, TransposedMatMulPropagatesInfThroughZero) {
  Matrix a{{0.0, 5.0}, {1.0, 1.0}};
  Matrix b{{1.0}, {1.0}};
  b(0, 0) = std::numeric_limits<double>::infinity();
  const Matrix out = a.TransposedMatMul(b);
  EXPECT_TRUE(std::isnan(out(0, 0)));  // 0*Inf
  EXPECT_TRUE(std::isinf(out(1, 0)));  // 5*Inf + 1
}

TEST(MatrixGemmNonFiniteTest, MatMulTransposedPropagatesNonFinite) {
  Matrix a{{0.0, 1.0}};
  Matrix b{{1.0, 1.0}, {2.0, 2.0}};
  b(0, 0) = std::nan("");
  b(1, 0) = std::numeric_limits<double>::infinity();
  const Matrix out = a.MatMulTransposed(b);  // 1x2
  EXPECT_TRUE(std::isnan(out(0, 0)));  // 0*NaN + 1*1
  EXPECT_TRUE(std::isnan(out(0, 1)));  // 0*Inf + 1*2
}

TEST(MatrixGemmNonFiniteTest, ZeroSkipFastPathStillExactWhenFinite) {
  // With a fully finite B the kernels may skip zero terms; the result must
  // equal the dense hand computation exactly.
  const Matrix a{{0.0, 2.0, 0.0}, {1.0, 0.0, 3.0}};
  const Matrix b{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(a.MatMul(b), (Matrix{{6.0, 8.0}, {16.0, 20.0}}));
  const Matrix c{{1.0, 2.0}, {0.0, 4.0}};
  EXPECT_EQ(c.TransposedMatMul(c),
            c.Transpose().MatMul(c));
}

TEST(MatrixTest, ToStringTruncates) {
  const Matrix m(20, 20, 1.0);
  const std::string s = m.ToString(2, 2);
  EXPECT_NE(s.find("Matrix(20 x 20)"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(MatrixDeathTest, ShapeMismatchAborts) {
  const Matrix a(2, 2), b(3, 2);
  EXPECT_DEATH(a.Add(b), "Check failed");
  EXPECT_DEATH(a.MatMul(b), "matmul");
  EXPECT_DEATH((void)a(5, 0), "Check failed");
}

// --------------------------------------------------------------------------
// IO
// --------------------------------------------------------------------------

TEST(MatrixIoTest, SerializeRoundTripExact) {
  Rng rng(5);
  const Matrix m = Matrix::RandomNormal(7, 3, 0.0, 2.0, &rng);
  auto restored = DeserializeMatrix(SerializeMatrix(m));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, m);  // bit-exact thanks to %.17g
}

TEST(MatrixIoTest, EmptyMatrixRoundTrip) {
  auto restored = DeserializeMatrix(SerializeMatrix(Matrix()));
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(MatrixIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/smgcn_matrix_test.txt";
  const Matrix m{{1.25, -3.5}, {0.0, 42.0}};
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  auto restored = LoadMatrix(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, m);
}

TEST(MatrixIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadMatrix("/no/such/file").status().code(), StatusCode::kIoError);
}

TEST(MatrixIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(DeserializeMatrix("2 2\n1 2\n3 4\n").ok());
}

TEST(MatrixIoTest, RejectsMalformedShape) {
  EXPECT_FALSE(DeserializeMatrix("smgcn-matrix v1\n2\n").ok());
  EXPECT_FALSE(DeserializeMatrix("smgcn-matrix v1\nx y\n").ok());
}

TEST(MatrixIoTest, RejectsShortOrRaggedRows) {
  EXPECT_FALSE(DeserializeMatrix("smgcn-matrix v1\n2 2\n1 2\n").ok());
  EXPECT_FALSE(DeserializeMatrix("smgcn-matrix v1\n2 2\n1 2\n3\n").ok());
  EXPECT_FALSE(DeserializeMatrix("smgcn-matrix v1\n1 2\n1 x\n").ok());
}

}  // namespace
}  // namespace tensor
}  // namespace smgcn
