// End-to-end tests of SMGCN and its ablation submodels: configuration
// validation, training dynamics, scoring contract, determinism, and that
// the model actually learns (beats the popularity heuristic).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/smgcn_model.h"
#include "src/core/train_telemetry.h"
#include "src/core/trainer.h"
#include "src/util/logging.h"
#include "tests/test_util.h"

namespace smgcn {
namespace core {
namespace {

TrainConfig FastTrainConfig() {
  TrainConfig train;
  train.learning_rate = 3e-3;
  train.l2_lambda = 1e-4;
  train.batch_size = 128;
  train.epochs = 25;
  train.seed = 3;
  return train;
}

ModelConfig SmallModelConfig() {
  ModelConfig model;
  model.embedding_dim = 16;
  model.layer_dims = {32, 32};
  model.thresholds = {2, 5};
  return model;
}

// --------------------------------------------------------------------------
// Config validation
// --------------------------------------------------------------------------

TEST(ConfigTest, TrainConfigValidation) {
  EXPECT_TRUE(FastTrainConfig().Validate().ok());
  auto bad = FastTrainConfig();
  bad.learning_rate = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastTrainConfig();
  bad.l2_lambda = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastTrainConfig();
  bad.batch_size = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastTrainConfig();
  bad.epochs = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastTrainConfig();
  bad.loss = LossKind::kBpr;
  bad.bpr_negatives = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(ConfigTest, ModelConfigValidation) {
  EXPECT_TRUE(SmallModelConfig().Validate().ok());
  auto bad = SmallModelConfig();
  bad.embedding_dim = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallModelConfig();
  bad.layer_dims = {16, 0};
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallModelConfig();
  bad.dropout = 1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallModelConfig();
  bad.dropout = -0.1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallModelConfig();
  bad.thresholds.xs = -1;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(ConfigTest, FinalDim) {
  auto cfg = SmallModelConfig();
  EXPECT_EQ(cfg.FinalDim(), 32u);
  cfg.layer_dims = {};
  EXPECT_EQ(cfg.FinalDim(), cfg.embedding_dim);
}

TEST(ConfigTest, LossKindNames) {
  EXPECT_STREQ(LossKindToString(LossKind::kMultiLabel), "multi-label");
  EXPECT_STREQ(LossKindToString(LossKind::kBpr), "bpr");
}

// --------------------------------------------------------------------------
// Trainer helpers
// --------------------------------------------------------------------------

TEST(TrainerHelpersTest, TargetMatrixIsMultiHot) {
  const auto split = testutil::SmallSplit();
  const auto targets = BuildTargetMatrix(split.train, {0, 1});
  EXPECT_EQ(targets.rows(), 2u);
  EXPECT_EQ(targets.cols(), split.train.num_herbs());
  const auto& p0 = split.train.at(0);
  double row_sum = 0.0;
  for (std::size_t c = 0; c < targets.cols(); ++c) row_sum += targets(0, c);
  EXPECT_DOUBLE_EQ(row_sum, static_cast<double>(p0.herbs.size()));
  for (int h : p0.herbs) {
    EXPECT_DOUBLE_EQ(targets(0, static_cast<std::size_t>(h)), 1.0);
  }
}

TEST(TrainerHelpersTest, PoolingCsrRowsAverage) {
  const auto split = testutil::SmallSplit();
  const auto pool = BuildSymptomPoolingCsr(split.train, {0, 3});
  EXPECT_EQ(pool.rows(), 2u);
  EXPECT_EQ(pool.cols(), split.train.num_symptoms());
  const auto sums = pool.RowSums();
  EXPECT_NEAR(sums[0], 1.0, 1e-12);
  EXPECT_NEAR(sums[1], 1.0, 1e-12);
  EXPECT_EQ(pool.RowNnz(0), split.train.at(0).symptoms.size());
}

TEST(TrainerHelpersTest, BprTriplesAvoidPositives) {
  const auto split = testutil::SmallSplit();
  Rng rng(5);
  const auto triples = SampleBprTriples(split.train, {0, 1, 2}, 2, &rng);
  EXPECT_FALSE(triples.empty());
  for (const auto& t : triples) {
    ASSERT_LT(t.row, 3u);
    const auto& herbs = split.train.at(t.row).herbs;
    EXPECT_TRUE(std::binary_search(herbs.begin(), herbs.end(),
                                   static_cast<int>(t.positive)));
    EXPECT_FALSE(std::binary_search(herbs.begin(), herbs.end(),
                                    static_cast<int>(t.negative)));
  }
  // negatives per positive respected.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    expected += 2 * split.train.at(i).herbs.size();
  }
  EXPECT_EQ(triples.size(), expected);
}

// --------------------------------------------------------------------------
// SMGCN end-to-end
// --------------------------------------------------------------------------

TEST(SmgcnModelTest, NameReflectsComponents) {
  auto cfg = SmallModelConfig();
  cfg.use_sge = true;
  cfg.use_si_mlp = true;
  EXPECT_EQ(SmgcnModel(cfg, FastTrainConfig()).name(), "SMGCN");
  cfg.use_sge = false;
  EXPECT_EQ(SmgcnModel(cfg, FastTrainConfig()).name(), "Bipar-GCN w/ SI");
  cfg.use_si_mlp = false;
  EXPECT_EQ(SmgcnModel(cfg, FastTrainConfig()).name(), "Bipar-GCN");
  cfg.use_sge = true;
  EXPECT_EQ(SmgcnModel(cfg, FastTrainConfig()).name(), "Bipar-GCN w/ SGE");
}

TEST(SmgcnModelTest, ScoreBeforeFitFails) {
  SmgcnModel model(SmallModelConfig(), FastTrainConfig());
  EXPECT_EQ(model.Score({0}).status().code(), StatusCode::kFailedPrecondition);
}

TEST(SmgcnModelTest, FitRejectsEmptyCorpus) {
  SmgcnModel model(SmallModelConfig(), FastTrainConfig());
  data::Corpus empty(data::Vocabulary::Synthetic(2, "s"),
                     data::Vocabulary::Synthetic(2, "h"), {});
  EXPECT_EQ(model.Fit(empty).code(), StatusCode::kFailedPrecondition);
}

TEST(SmgcnModelTest, TrainsAndLearns) {
  const auto split = testutil::SmallSplit();
  SmgcnModel model(SmallModelConfig(), FastTrainConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());

  // Loss decreased substantially.
  const auto& losses = model.train_summary().epoch_losses;
  ASSERT_GE(losses.size(), 2u);
  EXPECT_LT(losses.back(), 0.8 * losses.front());

  // Beats the popularity heuristic on recall@20.
  auto model_report = eval::Evaluate(model.AsScorer(), split.test);
  auto pop_report =
      eval::Evaluate(testutil::PopularityScorer(split.train), split.test);
  ASSERT_TRUE(model_report.ok());
  ASSERT_TRUE(pop_report.ok());
  EXPECT_GT(model_report->At(20).recall, pop_report->At(20).recall);
  EXPECT_GT(model_report->At(20).recall, 0.3);
}

TEST(SmgcnModelTest, EmbeddingsHaveExpectedShapes) {
  const auto split = testutil::SmallSplit();
  auto cfg = SmallModelConfig();
  SmgcnModel model(cfg, FastTrainConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_EQ(model.symptom_embeddings().rows(), split.train.num_symptoms());
  EXPECT_EQ(model.symptom_embeddings().cols(), cfg.FinalDim());
  EXPECT_EQ(model.herb_embeddings().rows(), split.train.num_herbs());
  EXPECT_TRUE(model.symptom_embeddings().AllFinite());
  EXPECT_TRUE(model.herb_embeddings().AllFinite());
}

TEST(SmgcnModelTest, ScoreContract) {
  const auto split = testutil::SmallSplit();
  SmgcnModel model(SmallModelConfig(), FastTrainConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());

  auto scores = model.Score({0, 1, 2});
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), split.train.num_herbs());

  EXPECT_EQ(model.Score({}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model.Score({-1}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model.Score({99999}).status().code(), StatusCode::kInvalidArgument);
}

TEST(SmgcnModelTest, RecommendReturnsTopK) {
  const auto split = testutil::SmallSplit();
  SmgcnModel model(SmallModelConfig(), FastTrainConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());
  auto top = model.Recommend({0, 1}, 5);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 5u);
  auto scores = model.Score({0, 1});
  ASSERT_TRUE(scores.ok());
  // Returned ids really are the argmaxes.
  for (std::size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE((*scores)[(*top)[i - 1]], (*scores)[(*top)[i]]);
  }
}

TEST(SmgcnModelTest, DeterministicAcrossRuns) {
  const auto split = testutil::SmallSplit();
  SmgcnModel a(SmallModelConfig(), FastTrainConfig());
  SmgcnModel b(SmallModelConfig(), FastTrainConfig());
  ASSERT_TRUE(a.Fit(split.train).ok());
  ASSERT_TRUE(b.Fit(split.train).ok());
  auto sa = a.Score({1, 2});
  auto sb = b.Score({1, 2});
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  for (std::size_t i = 0; i < sa->size(); ++i) {
    EXPECT_DOUBLE_EQ((*sa)[i], (*sb)[i]);
  }
}

TEST(SmgcnModelTest, RefitIsRejected) {
  const auto split = testutil::SmallSplit();
  SmgcnModel model(SmallModelConfig(), FastTrainConfig());
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_EQ(model.Fit(split.train).code(), StatusCode::kFailedPrecondition);
}

TEST(SmgcnModelTest, SubmodelsAllTrain) {
  const auto split = testutil::SmallSplit();
  for (const bool use_sge : {false, true}) {
    for (const bool use_si : {false, true}) {
      auto cfg = SmallModelConfig();
      cfg.use_sge = use_sge;
      cfg.use_si_mlp = use_si;
      auto train = FastTrainConfig();
      train.epochs = 5;
      SmgcnModel model(cfg, train);
      ASSERT_TRUE(model.Fit(split.train).ok()) << model.name();
      auto report = eval::Evaluate(model.AsScorer(), split.test);
      ASSERT_TRUE(report.ok()) << model.name();
      EXPECT_GT(report->At(20).recall, 0.1) << model.name();
    }
  }
}

TEST(SmgcnModelTest, TrainsWithDropout) {
  const auto split = testutil::SmallSplit();
  auto cfg = SmallModelConfig();
  cfg.dropout = 0.3;
  auto train = FastTrainConfig();
  train.epochs = 5;
  SmgcnModel model(cfg, train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_TRUE(model.symptom_embeddings().AllFinite());
}

TEST(SmgcnModelTest, TrainsWithBprLoss) {
  const auto split = testutil::SmallSplit();
  auto train = FastTrainConfig();
  train.loss = LossKind::kBpr;
  train.epochs = 5;
  SmgcnModel model(SmallModelConfig(), train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  auto report = eval::Evaluate(model.AsScorer(), split.test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->At(20).recall, 0.1);
}

TEST(SmgcnModelTest, SingleLayerAndThreeLayerVariants) {
  const auto split = testutil::SmallSplit();
  for (const std::size_t depth : {1u, 3u}) {
    auto cfg = SmallModelConfig();
    cfg.layer_dims.assign(depth, 24);
    auto train = FastTrainConfig();
    train.epochs = 4;
    SmgcnModel model(cfg, train);
    ASSERT_TRUE(model.Fit(split.train).ok()) << "depth " << depth;
    EXPECT_EQ(model.symptom_embeddings().cols(), 24u);
  }
}

TEST(SmgcnModelTest, AttentionFusionVariantTrains) {
  const auto split = testutil::SmallSplit();
  auto cfg = SmallModelConfig();
  cfg.fusion = FusionKind::kAttention;
  auto train = FastTrainConfig();
  train.epochs = 8;
  SmgcnModel model(cfg, train);
  EXPECT_EQ(model.name(), "SMGCN-Att");
  ASSERT_TRUE(model.Fit(split.train).ok());
  // The attention parameters exist and received gradient updates.
  auto w_att = model.parameters().Get("fusion.W_att_s");
  ASSERT_TRUE(w_att.ok());
  auto report = eval::Evaluate(model.AsScorer(), split.test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->At(20).recall, 0.1);
}

TEST(SmgcnModelTest, MeanSgeAggregatorTrains) {
  const auto split = testutil::SmallSplit();
  auto cfg = SmallModelConfig();
  cfg.sge_aggregator = SgeAggregator::kMean;
  auto train = FastTrainConfig();
  train.epochs = 8;
  SmgcnModel model(cfg, train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_TRUE(model.herb_embeddings().AllFinite());
  auto report = eval::Evaluate(model.AsScorer(), split.test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->At(20).recall, 0.1);
}

TEST(SmgcnModelTest, NeighborSamplingTrains) {
  const auto split = testutil::SmallSplit();
  auto cfg = SmallModelConfig();
  cfg.max_sampled_neighbors = 5;  // aggressive cap
  auto train = FastTrainConfig();
  train.epochs = 8;
  SmgcnModel model(cfg, train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_TRUE(model.herb_embeddings().AllFinite());
  // Inference still uses the full graph and produces sane rankings.
  auto report = eval::Evaluate(model.AsScorer(), split.test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->At(20).recall, 0.1);
}

TEST(SmgcnModelTest, FusionAndAggregatorNames) {
  EXPECT_STREQ(FusionKindToString(FusionKind::kAdd), "add");
  EXPECT_STREQ(FusionKindToString(FusionKind::kAttention), "attention");
  EXPECT_STREQ(SgeAggregatorToString(SgeAggregator::kSum), "sum");
  EXPECT_STREQ(SgeAggregatorToString(SgeAggregator::kMean), "mean");
}

TEST(SmgcnModelTest, DivergenceIsReportedNotCrashed) {
  const auto split = testutil::SmallSplit();
  auto train = FastTrainConfig();
  train.learning_rate = 1e6;  // guaranteed blow-up
  train.epochs = 3;
  SmgcnModel model(SmallModelConfig(), train);
  const Status status = model.Fit(split.train);
  if (!status.ok()) {
    EXPECT_EQ(status.code(), StatusCode::kInternal);
  }
}

// --------------------------------------------------------------------------
// Telemetry
// --------------------------------------------------------------------------

TEST(SmgcnModelTest, EpochSecondsParallelToEpochLosses) {
  const auto split = testutil::SmallSplit();
  auto train = FastTrainConfig();
  train.epochs = 6;
  // Early stopping exercises the restructured loop: the stop epoch must
  // still get its seconds entry.
  train.validation_fraction = 0.2;
  train.patience = 1;
  SmgcnModel model(SmallModelConfig(), train);
  ASSERT_TRUE(model.Fit(split.train).ok());
  const TrainSummary& summary = model.train_summary();
  ASSERT_FALSE(summary.epoch_losses.empty());
  EXPECT_EQ(summary.epoch_seconds.size(), summary.epoch_losses.size());
  for (double seconds : summary.epoch_seconds) EXPECT_GT(seconds, 0.0);
}

TEST(SmgcnModelTest, TelemetryGetsOneRecordPerEpochWithEvalMetrics) {
  const auto split = testutil::SmallSplit();
  TrainTelemetryOptions options;  // in-memory only
  options.eval_corpus = &split.test;
  auto telemetry = TrainTelemetry::Create(options);
  ASSERT_TRUE(telemetry.ok());

  auto train = FastTrainConfig();
  train.epochs = 5;
  SmgcnModel model(SmallModelConfig(), train);
  model.AttachTelemetry(telemetry->get());
  ASSERT_TRUE(model.Fit(split.train).ok());

  const auto& records = (*telemetry)->records();
  ASSERT_EQ(records.size(), model.train_summary().epoch_losses.size());
  EXPECT_EQ((*telemetry)->JsonLines().size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EpochTelemetry& record = records[i];
    EXPECT_EQ(record.epoch, i + 1);
    EXPECT_EQ(record.mean_loss, model.train_summary().epoch_losses[i]);
    EXPECT_GT(record.param_norm, 0.0);
    EXPECT_GT(record.grad_norm, 0.0);
    EXPECT_GT(record.epoch_seconds, 0.0);
    ASSERT_TRUE(record.has_eval);
    EXPECT_GT(record.eval.At(20).recall, 0.0);
    const std::string json = record.ToJson();
    EXPECT_NE(json.find("\"event\":\"epoch\""), std::string::npos);
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  }
  // Later epochs train longer, so the model should not get *worse* by a
  // wide margin — sanity that mid-training eval runs on current params.
  EXPECT_GT(records.back().eval.At(20).recall,
            records.front().eval.At(20).recall * 0.5);
}

TEST(SmgcnModelTest, DivergenceNamesFirstNonFiniteParameterAndLogsEvent) {
  const auto split = testutil::SmallSplit();
  TrainTelemetryOptions options;
  auto telemetry = TrainTelemetry::Create(options);
  ASSERT_TRUE(telemetry.ok());

  auto train = FastTrainConfig();
  // Adam-style steps move parameters by ~learning_rate per step, so pick a
  // rate that overflows the very next forward pass (params ~1e200, squared
  // in the GEMM -> inf) regardless of gradient magnitudes.
  train.learning_rate = 1e200;
  train.epochs = 8;
  train.log_every = 0;
  SetLogSink([](LogLevel, const std::string&) {});  // quiet the ERROR line
  SmgcnModel model(SmallModelConfig(), train);
  model.AttachTelemetry(telemetry->get());
  const Status status = model.Fit(split.train);
  SetLogSink(nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("diverged"), std::string::npos)
      << status.message();
  // The divergence event reaches the telemetry stream too.
  bool saw_divergence = false;
  for (const std::string& line : (*telemetry)->JsonLines()) {
    if (line.find("\"event\":\"divergence\"") != std::string::npos) {
      saw_divergence = true;
    }
  }
  EXPECT_TRUE(saw_divergence);
}

TEST(SmgcnModelTest, DeprecatedNumThreadsWarnsExactlyOnce) {
  const auto split = testutil::SmallSplit();
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel level, const std::string& line) {
    if (level == LogLevel::kWarning) captured.push_back(line);
  });
  auto train = FastTrainConfig();
  train.epochs = 1;
  train.num_threads = 2;  // deprecated knob
  for (int round = 0; round < 2; ++round) {
    SmgcnModel model(SmallModelConfig(), train);
    ASSERT_TRUE(model.Fit(split.train).ok());
  }
  SetLogSink(nullptr);
  std::size_t deprecation_lines = 0;
  for (const std::string& line : captured) {
    if (line.find("TrainConfig::num_threads is deprecated") !=
        std::string::npos) {
      ++deprecation_lines;
    }
  }
  EXPECT_EQ(deprecation_lines, 1u);
}

}  // namespace
}  // namespace core
}  // namespace smgcn
