// Tests for the shared GNN scaffolding: checkpoint export across model
// families, neighbour-sampling operators, and base-class contracts.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "src/baselines/hetegcn.h"
#include "src/baselines/pinsage.h"
#include "src/core/checkpoint.h"
#include "src/core/smgcn_model.h"
#include "tests/test_util.h"

namespace smgcn {
namespace core {
namespace {

TrainConfig FastTrain() {
  TrainConfig train;
  train.learning_rate = 3e-3;
  train.l2_lambda = 1e-4;
  train.batch_size = 128;
  train.epochs = 8;
  train.seed = 3;
  return train;
}

ModelConfig SmallModel(std::vector<std::size_t> dims) {
  ModelConfig model;
  model.embedding_dim = 16;
  model.layer_dims = std::move(dims);
  model.thresholds = {2, 5};
  return model;
}

TEST(GnnBaseTest, HeteGcnExportsCheckpointWithoutSiMlp) {
  const auto split = testutil::SmallSplit();
  baselines::HeteGcn model(SmallModel({24}), FastTrain());
  ASSERT_TRUE(model.Fit(split.train).ok());

  auto checkpoint = model.ExportCheckpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_FALSE(checkpoint->has_si_mlp);  // HeteGCN uses average pooling
  EXPECT_EQ(checkpoint->model_name, "HeteGCN");

  auto served = CheckpointRecommender::FromCheckpoint(*std::move(checkpoint));
  ASSERT_TRUE(served.ok());
  auto original = model.Score({0, 3, 7});
  auto restored = served->Score({0, 3, 7});
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(restored.ok());
  for (std::size_t h = 0; h < original->size(); ++h) {
    EXPECT_NEAR((*original)[h], (*restored)[h], 1e-9);
  }
}

TEST(GnnBaseTest, PinSageTrainsWithNeighborSampling) {
  const auto split = testutil::SmallSplit();
  auto cfg = SmallModel({16, 16});
  cfg.max_sampled_neighbors = 4;
  baselines::PinSage model(cfg, FastTrain());
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_TRUE(model.herb_embeddings().AllFinite());
  auto report = eval::Evaluate(model.AsScorer(), split.test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->At(20).recall, 0.1);
}

TEST(GnnBaseTest, SamplingDoesNotChangeInferenceDeterminism) {
  // Two identically-seeded sampled models must agree exactly; and cached
  // inference embeddings come from the full graph (scores are stable
  // across repeated Score calls).
  const auto split = testutil::SmallSplit();
  auto cfg = SmallModel({24});
  cfg.max_sampled_neighbors = 6;
  SmgcnModel a(cfg, FastTrain());
  SmgcnModel b(cfg, FastTrain());
  ASSERT_TRUE(a.Fit(split.train).ok());
  ASSERT_TRUE(b.Fit(split.train).ok());
  auto sa = a.Score({2, 4});
  auto sb = b.Score({2, 4});
  auto sa2 = a.Score({2, 4});
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE(sa2.ok());
  for (std::size_t h = 0; h < sa->size(); ++h) {
    EXPECT_DOUBLE_EQ((*sa)[h], (*sb)[h]);
    EXPECT_DOUBLE_EQ((*sa)[h], (*sa2)[h]);
  }
}

TEST(GnnBaseTest, ParameterStoreSnapshotRestoresModelBehaviour) {
  // Save a trained model's parameters, scramble them, restore, and verify
  // the cached-embedding scores can be reproduced through a fresh forward.
  const auto split = testutil::SmallSplit();
  SmgcnModel model(SmallModel({24}), FastTrain());
  ASSERT_TRUE(model.Fit(split.train).ok());

  const std::string path = testing::TempDir() + "/smgcn_gnnbase_store.ckpt";
  ASSERT_TRUE(SaveParameterStore(model.parameters(), path).ok());

  // Restoring into the same (const-cast-free path: re-load into a second
  // store built to the same structure is covered in checkpoint_test; here
  // we verify the file lists every parameter of a real model).
  std::ifstream in(path);
  std::string first_line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, first_line)));
  EXPECT_EQ(first_line, "smgcn-parameter-store v1");
  std::string count_line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, count_line)));
  EXPECT_EQ(static_cast<std::size_t>(std::stoul(count_line)),
            model.parameters().size());
}

TEST(GnnBaseTest, AsScorerMatchesScore) {
  const auto split = testutil::SmallSplit();
  SmgcnModel model(SmallModel({24}), FastTrain());
  ASSERT_TRUE(model.Fit(split.train).ok());
  const eval::HerbScorer scorer = model.AsScorer();
  const auto direct = model.Score({1, 2, 3});
  ASSERT_TRUE(direct.ok());
  const auto via_scorer = scorer({1, 2, 3});
  ASSERT_EQ(via_scorer.size(), direct->size());
  for (std::size_t h = 0; h < direct->size(); ++h) {
    EXPECT_DOUBLE_EQ(via_scorer[h], (*direct)[h]);
  }
}

}  // namespace
}  // namespace core
}  // namespace smgcn
