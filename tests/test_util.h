// Shared fixtures for model-level tests: a small synthetic corpus and
// baseline scorers to compare trained models against.
#ifndef SMGCN_TESTS_TEST_UTIL_H_
#define SMGCN_TESTS_TEST_UTIL_H_

#include <vector>

#include "src/data/split.h"
#include "src/data/tcm_generator.h"
#include "src/eval/evaluator.h"
#include "src/util/logging.h"

namespace smgcn {
namespace testutil {

/// A small but learnable corpus: trains any model here in a few seconds.
inline data::TcmGeneratorConfig SmallCorpusConfig() {
  data::TcmGeneratorConfig cfg;
  cfg.num_symptoms = 50;
  cfg.num_herbs = 80;
  cfg.num_syndromes = 8;
  cfg.num_prescriptions = 600;
  cfg.symptom_pool_size = 10;
  cfg.herb_pool_size = 12;
  // Soften global popularity so the popularity heuristic is beatable and
  // the learned structure dominates.
  cfg.herb_zipf = 0.4;
  cfg.base_herb_prob = 0.3;
  cfg.seed = 4242;
  return cfg;
}

/// Generates and splits the small corpus (deterministic).
inline data::TrainTestSplit SmallSplit() {
  data::TcmGenerator gen(SmallCorpusConfig());
  auto corpus = gen.Generate();
  SMGCN_CHECK(corpus.ok()) << corpus.status();
  Rng rng(1);
  auto split = data::SplitCorpus(*corpus, 0.85, &rng);
  SMGCN_CHECK(split.ok()) << split.status();
  return *std::move(split);
}

/// Recommends herbs by global training popularity — any learned model worth
/// its salt must beat this on recall@20.
inline eval::HerbScorer PopularityScorer(const data::Corpus& train) {
  std::vector<double> popularity;
  for (std::size_t f : train.HerbFrequencies()) {
    popularity.push_back(static_cast<double>(f));
  }
  return [popularity](const std::vector<int>&) { return popularity; };
}

}  // namespace testutil
}  // namespace smgcn

#endif  // SMGCN_TESTS_TEST_UTIL_H_
