// Unit tests for the paper's graph constructions: the symptom-herb
// bipartite graph and the thresholded SS / HH synergy graphs.
#include <gtest/gtest.h>

#include "src/data/prescription.h"
#include "src/graph/graph_builder.h"

namespace smgcn {
namespace graph {
namespace {

using data::Corpus;
using data::Vocabulary;

Corpus HandCorpus() {
  // p0: {s0, s1} -> {h0, h1}
  // p1: {s0, s2} -> {h2, h3}
  // p2: {s0, s1} -> {h0, h2}
  Corpus corpus(Vocabulary::Synthetic(4, "s"), Vocabulary::Synthetic(5, "h"), {});
  EXPECT_TRUE(corpus.Add({{0, 1}, {0, 1}}).ok());
  EXPECT_TRUE(corpus.Add({{0, 2}, {2, 3}}).ok());
  EXPECT_TRUE(corpus.Add({{0, 1}, {0, 2}}).ok());
  return corpus;
}

TEST(GraphBuilderTest, SymptomHerbEdgesFromCoOccurrence) {
  const CsrMatrix sh = BuildSymptomHerbGraph(HandCorpus());
  EXPECT_EQ(sh.rows(), 4u);
  EXPECT_EQ(sh.cols(), 5u);
  // s0 appears with h0, h1 (p0), h2, h3 (p1), h0, h2 (p2).
  EXPECT_DOUBLE_EQ(sh.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sh.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(sh.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(sh.At(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(sh.At(0, 4), 0.0);
  // s1 never co-occurs with h3.
  EXPECT_DOUBLE_EQ(sh.At(1, 3), 0.0);
  // s3 is never used.
  EXPECT_EQ(sh.RowNnz(3), 0u);
}

TEST(GraphBuilderTest, BipartiteEdgesAreBinaryEvenWhenRepeated) {
  // (s0, h0) co-occurs in two prescriptions but the entry stays 1.
  const CsrMatrix sh = BuildSymptomHerbGraph(HandCorpus());
  EXPECT_DOUBLE_EQ(sh.At(0, 0), 1.0);
}

TEST(GraphBuilderTest, SynergyThresholdIsStrictlyGreater) {
  const Corpus corpus = HandCorpus();
  // Pair (s0, s1) co-occurs twice; (s0, s2) once.
  const CsrMatrix ss0 = BuildSynergyGraph(corpus, /*use_herbs=*/false, 0);
  EXPECT_DOUBLE_EQ(ss0.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ss0.At(0, 2), 1.0);
  const CsrMatrix ss1 = BuildSynergyGraph(corpus, /*use_herbs=*/false, 1);
  EXPECT_DOUBLE_EQ(ss1.At(0, 1), 1.0);   // count 2 > 1
  EXPECT_DOUBLE_EQ(ss1.At(0, 2), 0.0);   // count 1, not > 1
  const CsrMatrix ss2 = BuildSynergyGraph(corpus, /*use_herbs=*/false, 2);
  EXPECT_EQ(ss2.nnz(), 0u);
}

TEST(GraphBuilderTest, SynergyGraphIsSymmetricWithZeroDiagonal) {
  const CsrMatrix hh = BuildSynergyGraph(HandCorpus(), /*use_herbs=*/true, 0);
  for (std::size_t i = 0; i < hh.rows(); ++i) {
    EXPECT_DOUBLE_EQ(hh.At(i, i), 0.0);
    for (std::size_t j = 0; j < hh.cols(); ++j) {
      EXPECT_DOUBLE_EQ(hh.At(i, j), hh.At(j, i));
    }
  }
}

TEST(GraphBuilderTest, HerbSynergyCounts) {
  // h0-h1 co-occur once (p0); h0-h2 once (p2); h2-h3 once (p1).
  const CsrMatrix hh = BuildSynergyGraph(HandCorpus(), /*use_herbs=*/true, 0);
  EXPECT_DOUBLE_EQ(hh.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(hh.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(hh.At(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(hh.At(1, 3), 0.0);
}

TEST(GraphBuilderTest, SecondOrderNeighboursAreNotSynergyEdges) {
  // The paper's example (Sec. IV-B): in p1={s1}->{h1,h2}, p2={s1}->{h3},
  // h2 and h3 are 2nd-order neighbours via s1 but never co-prescribed, so
  // HH must not connect them.
  Corpus corpus(Vocabulary::Synthetic(2, "s"), Vocabulary::Synthetic(4, "h"), {});
  ASSERT_TRUE(corpus.Add({{1}, {1, 2}}).ok());
  ASSERT_TRUE(corpus.Add({{1}, {3}}).ok());
  const CsrMatrix hh = BuildSynergyGraph(corpus, /*use_herbs=*/true, 0);
  EXPECT_DOUBLE_EQ(hh.At(2, 3), 0.0);
  EXPECT_DOUBLE_EQ(hh.At(1, 2), 1.0);
  const CsrMatrix sh = BuildSymptomHerbGraph(corpus);
  EXPECT_DOUBLE_EQ(sh.At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(sh.At(1, 3), 1.0);
}

TEST(GraphBuilderTest, BuildTcmGraphsWiresAllFour) {
  auto graphs = BuildTcmGraphs(HandCorpus(), {0, 0});
  ASSERT_TRUE(graphs.ok());
  EXPECT_EQ(graphs->symptom_herb.rows(), 4u);
  EXPECT_EQ(graphs->herb_symptom.rows(), 5u);
  EXPECT_EQ(graphs->symptom_symptom.rows(), 4u);
  EXPECT_EQ(graphs->herb_herb.rows(), 5u);
  // herb_symptom is the exact transpose.
  EXPECT_LT(graphs->herb_symptom.ToDense().MaxAbsDiff(
                graphs->symptom_herb.ToDense().Transpose()),
            1e-15);
}

TEST(GraphBuilderTest, BuildTcmGraphsRejectsEmptyCorpusAndBadThresholds) {
  Corpus empty(Vocabulary::Synthetic(2, "s"), Vocabulary::Synthetic(2, "h"), {});
  EXPECT_EQ(BuildTcmGraphs(empty, {0, 0}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(BuildTcmGraphs(HandCorpus(), {-1, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BuildTcmGraphs(HandCorpus(), {0, -5}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SampleNeighborsTest, CapsRowDegrees) {
  // A row with 5 entries sampled down to 2; short rows untouched.
  const CsrMatrix adj = CsrMatrix::FromTriplets(
      2, 6,
      {{0, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {0, 4, 1.0}, {1, 5, 2.5}});
  Rng rng(3);
  const CsrMatrix sampled = SampleNeighbors(adj, 2, &rng);
  EXPECT_EQ(sampled.RowNnz(0), 2u);
  EXPECT_EQ(sampled.RowNnz(1), 1u);
  EXPECT_DOUBLE_EQ(sampled.At(1, 5), 2.5);  // values preserved
  // Sampled entries are a subset of the original row.
  sampled.ForEachInRow(0, [&](std::size_t c, double v) {
    EXPECT_DOUBLE_EQ(adj.At(0, c), v);
  });
}

TEST(SampleNeighborsTest, FullGraphWhenCapExceedsDegrees) {
  const CsrMatrix adj = BuildSymptomHerbGraph(HandCorpus());
  Rng rng(5);
  const CsrMatrix sampled = SampleNeighbors(adj, 1000, &rng);
  EXPECT_EQ(sampled.nnz(), adj.nnz());
  EXPECT_LT(sampled.ToDense().MaxAbsDiff(adj.ToDense()), 1e-15);
}

TEST(SampleNeighborsTest, DeterministicGivenSeed) {
  const CsrMatrix adj = BuildSymptomHerbGraph(HandCorpus());
  Rng a(7), b(7);
  const CsrMatrix s1 = SampleNeighbors(adj, 2, &a);
  const CsrMatrix s2 = SampleNeighbors(adj, 2, &b);
  EXPECT_LT(s1.ToDense().MaxAbsDiff(s2.ToDense()), 1e-15);
}

TEST(GraphBuilderTest, HigherThresholdNeverAddsEdges) {
  const Corpus corpus = HandCorpus();
  const CsrMatrix lo = BuildSynergyGraph(corpus, true, 0);
  const CsrMatrix hi = BuildSynergyGraph(corpus, true, 1);
  EXPECT_LE(hi.nnz(), lo.nnz());
  // Every high-threshold edge exists at the low threshold.
  for (std::size_t r = 0; r < hi.rows(); ++r) {
    hi.ForEachInRow(r, [&](std::size_t c, double v) {
      EXPECT_DOUBLE_EQ(v, 1.0);
      EXPECT_DOUBLE_EQ(lo.At(r, c), 1.0);
    });
  }
}

}  // namespace
}  // namespace graph
}  // namespace smgcn
