// Tests for src/net: wire codec totality, HTTP parsing, and the server
// end-to-end — protocol sniffing, binary round trips bit-identical to
// in-process Handle, pipelining order, malformed-input behaviour,
// admission-control shedding over the wire, graceful drain, and a
// TSan-targeted concurrent connect/publish/query hammer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/audit.h"
#include "src/core/checkpoint.h"
#include "src/net/client.h"
#include "src/net/http.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/obs/registry.h"
#include "src/serve/model_manager.h"
#include "src/serve/request.h"
#include "src/serve/status.h"
#include "src/tensor/matrix.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace smgcn {
namespace net {
namespace {

core::InferenceCheckpoint MakeCheckpoint(std::size_t num_symptoms = 24,
                                         std::size_t num_herbs = 40,
                                         std::size_t dim = 8) {
  Rng rng(907);
  core::InferenceCheckpoint ckpt;
  ckpt.model_name = "test-ckpt";
  ckpt.symptom_embeddings =
      tensor::Matrix::RandomNormal(num_symptoms, dim, 0.0, 1.0, &rng);
  ckpt.herb_embeddings =
      tensor::Matrix::RandomNormal(num_herbs, dim, 0.0, 1.0, &rng);
  ckpt.has_si_mlp = true;
  ckpt.si_weight = tensor::Matrix::RandomNormal(dim, dim, 0.0, 0.5, &rng);
  ckpt.si_bias = tensor::Matrix::RandomNormal(1, dim, 0.0, 0.5, &rng);
  // Pre-fusion Bipar-GCN herb table so attribution has real components.
  ckpt.has_herb_bipar = true;
  ckpt.herb_bipar =
      tensor::Matrix::RandomNormal(num_herbs, dim, 0.0, 0.5, &rng);
  return ckpt;
}

std::unique_ptr<serve::ModelManager> MakeManager(
    serve::ModelManagerOptions options = {}) {
  auto manager = serve::ModelManager::Create(options);
  SMGCN_CHECK(manager.ok());
  SMGCN_CHECK((*manager)->Publish(MakeCheckpoint(), "v1").ok());
  return std::move(*manager);
}

// --------------------------------------------------------------------------
// Wire codec
// --------------------------------------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  serve::Request request;
  request.symptoms = {4, 1, 9, 1};
  request.top_k = 12;
  request.deadline_ms = 7.5;
  request.model = "test-ckpt";
  request.version = "v1";
  auto frame = wire::EncodeRequest(request);
  ASSERT_TRUE(frame.ok());
  // No v2 field used: the encoder must emit a v1 frame (old servers parse).
  EXPECT_EQ((*frame)[1], 1);
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  ASSERT_TRUE(wire::DecodeHeader(frame->data(), wire::kRequestMagic,
                                 &payload_len, &version)
                  .ok());
  ASSERT_EQ(frame->size(), wire::kHeaderBytes + payload_len);
  auto decoded = wire::DecodeRequestPayload(frame->data() + wire::kHeaderBytes,
                                            payload_len, version);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->symptoms, request.symptoms);
  EXPECT_EQ(decoded->top_k, request.top_k);
  EXPECT_DOUBLE_EQ(decoded->deadline_ms, 7.5);  // micros resolution: exact
  EXPECT_EQ(decoded->model, "test-ckpt");
  EXPECT_EQ(decoded->version, "v1");
  EXPECT_TRUE(decoded->request_id.empty());
  EXPECT_FALSE(decoded->attribution);
}

TEST(WireTest, V2RequestRoundTrip) {
  serve::Request request;
  request.symptoms = {3, 8};
  request.top_k = 5;
  request.request_id = "client-abc-001";
  request.attribution = true;
  auto frame = wire::EncodeRequest(request);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[1], 2);
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  ASSERT_TRUE(wire::DecodeHeader(frame->data(), wire::kRequestMagic,
                                 &payload_len, &version)
                  .ok());
  EXPECT_EQ(version, 2);
  auto decoded = wire::DecodeRequestPayload(frame->data() + wire::kHeaderBytes,
                                            payload_len, version);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->symptoms, request.symptoms);
  EXPECT_EQ(decoded->request_id, "client-abc-001");
  EXPECT_TRUE(decoded->attribution);
}

TEST(WireTest, RejectsBadRequestIds) {
  serve::Request request;
  request.symptoms = {1};
  request.top_k = 5;
  request.request_id.assign(wire::kMaxWireRequestId + 1, 'x');
  EXPECT_FALSE(wire::EncodeRequest(request).ok());
  request.request_id = "has space";
  EXPECT_FALSE(wire::EncodeRequest(request).ok());
}

TEST(WireTest, ResponseRoundTrip) {
  serve::Response response;
  response.status = serve::StatusCode::kShedding;
  response.message = "admission queue full";
  response.herb_ids = {7, 0, 39};
  response.model = "test-ckpt";
  response.version = "v2";
  auto frame = wire::EncodeResponse(response);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[1], 1);  // no v2 field used
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  ASSERT_TRUE(wire::DecodeHeader(frame->data(), wire::kResponseMagic,
                                 &payload_len, &version)
                  .ok());
  auto decoded = wire::DecodeResponsePayload(
      frame->data() + wire::kHeaderBytes, payload_len, version);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status, serve::StatusCode::kShedding);
  EXPECT_EQ(decoded->message, "admission queue full");
  EXPECT_EQ(decoded->herb_ids, response.herb_ids);
  EXPECT_EQ(decoded->model, "test-ckpt");
  EXPECT_EQ(decoded->version, "v2");
}

TEST(WireTest, V2ResponseRoundTripWithAttribution) {
  serve::Response response;
  response.status = serve::StatusCode::kOk;
  response.herb_ids = {7, 0};
  response.model = "test-ckpt";
  response.version = "v3";
  response.request_id = "req-42";
  audit::QueryAttribution attr;
  attr.symptom_ids = {1, 4, 9};
  attr.herbs.resize(2);
  for (std::size_t i = 0; i < 2; ++i) {
    audit::HerbAttribution& herb = attr.herbs[i];
    herb.herb_id = response.herb_ids[i];
    herb.score = 1.25 + static_cast<double>(i) * 0.1;
    herb.bipar = 0.75;
    herb.synergy = herb.score - herb.bipar;
    herb.pool_bias = -0.0625;
    herb.pool_residual = 1e-17;
    herb.has_components = true;
    herb.exact = i == 0;
    herb.per_symptom = {0.5, -0.25, 0.125 + static_cast<double>(i)};
  }
  response.attribution = attr;
  auto frame = wire::EncodeResponse(response);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[1], 2);
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  ASSERT_TRUE(wire::DecodeHeader(frame->data(), wire::kResponseMagic,
                                 &payload_len, &version)
                  .ok());
  auto decoded = wire::DecodeResponsePayload(
      frame->data() + wire::kHeaderBytes, payload_len, version);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, "req-42");
  ASSERT_TRUE(decoded->attribution.has_value());
  EXPECT_EQ(decoded->attribution->symptom_ids, attr.symptom_ids);
  ASSERT_EQ(decoded->attribution->herbs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const audit::HerbAttribution& in = attr.herbs[i];
    const audit::HerbAttribution& out = decoded->attribution->herbs[i];
    EXPECT_EQ(out.herb_id, in.herb_id);
    // f64 bit patterns on the wire: every term round-trips exactly.
    EXPECT_EQ(out.score, in.score);
    EXPECT_EQ(out.bipar, in.bipar);
    EXPECT_EQ(out.synergy, in.synergy);
    EXPECT_EQ(out.pool_bias, in.pool_bias);
    EXPECT_EQ(out.pool_residual, in.pool_residual);
    EXPECT_EQ(out.has_components, in.has_components);
    EXPECT_EQ(out.exact, in.exact);
    EXPECT_EQ(out.per_symptom, in.per_symptom);
  }
}

TEST(WireTest, OversizedAttributionIsDroppedNotFatal) {
  // An attribution block that would blow the 64 KiB frame cap is dropped;
  // the ranking and request id still travel.
  serve::Response response;
  response.herb_ids.assign(10, 3);
  response.request_id = "big";
  audit::QueryAttribution attr;
  attr.symptom_ids.assign(1000, 1);
  attr.herbs.resize(10);
  for (auto& herb : attr.herbs) herb.per_symptom.assign(1000, 0.0);
  response.attribution = std::move(attr);
  auto frame = wire::EncodeResponse(response);
  ASSERT_TRUE(frame.ok());
  ASSERT_LE(frame->size(), wire::kHeaderBytes + wire::kMaxPayloadBytes);
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  ASSERT_TRUE(wire::DecodeHeader(frame->data(), wire::kResponseMagic,
                                 &payload_len, &version)
                  .ok());
  auto decoded = wire::DecodeResponsePayload(
      frame->data() + wire::kHeaderBytes, payload_len, version);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, "big");
  EXPECT_EQ(decoded->herb_ids.size(), 10u);
  EXPECT_FALSE(decoded->attribution.has_value());
}

TEST(WireTest, EncodeRejectsUnrepresentableRequests) {
  serve::Request dense;
  dense.symptoms = {1};
  dense.top_k = 0;  // dense mode is in-process only
  EXPECT_FALSE(wire::EncodeRequest(dense).ok());

  serve::Request huge;
  huge.top_k = 5;
  huge.symptoms.assign(wire::kMaxWireSymptoms + 1, 1);
  EXPECT_FALSE(wire::EncodeRequest(huge).ok());

  serve::Request long_name;
  long_name.symptoms = {1};
  long_name.top_k = 5;
  long_name.model.assign(256, 'm');
  EXPECT_FALSE(wire::EncodeRequest(long_name).ok());
}

TEST(WireTest, DecoderRejectsMalformedFrames) {
  serve::Request request;
  request.symptoms = {1, 2};
  request.top_k = 5;
  auto frame = wire::EncodeRequest(request);
  ASSERT_TRUE(frame.ok());

  std::uint32_t len = 0;
  std::uint8_t ver = 0;
  // Wrong magic.
  std::vector<std::uint8_t> bad = *frame;
  bad[0] = 0x00;
  EXPECT_FALSE(
      wire::DecodeHeader(bad.data(), wire::kRequestMagic, &len, &ver).ok());
  // Response magic where a request is expected.
  bad = *frame;
  bad[0] = wire::kResponseMagic;
  EXPECT_FALSE(
      wire::DecodeHeader(bad.data(), wire::kRequestMagic, &len, &ver).ok());
  // Unknown version.
  bad = *frame;
  bad[1] = 99;
  EXPECT_FALSE(
      wire::DecodeHeader(bad.data(), wire::kRequestMagic, &len, &ver).ok());
  // Oversized declared length.
  bad = *frame;
  const std::uint32_t oversized = wire::kMaxPayloadBytes + 1;
  bad[2] = static_cast<std::uint8_t>(oversized & 0xFF);
  bad[3] = static_cast<std::uint8_t>((oversized >> 8) & 0xFF);
  bad[4] = static_cast<std::uint8_t>((oversized >> 16) & 0xFF);
  bad[5] = static_cast<std::uint8_t>((oversized >> 24) & 0xFF);
  EXPECT_FALSE(
      wire::DecodeHeader(bad.data(), wire::kRequestMagic, &len, &ver).ok());

  // Truncated payload (every prefix must decode to an error, never UB).
  const std::uint8_t* payload = frame->data() + wire::kHeaderBytes;
  const std::size_t payload_len = frame->size() - wire::kHeaderBytes;
  for (std::size_t cut = 0; cut < payload_len; ++cut) {
    EXPECT_FALSE(wire::DecodeRequestPayload(payload, cut, 1).ok()) << cut;
  }
  // Trailing garbage: exact-size match is required.
  std::vector<std::uint8_t> padded(payload, payload + payload_len);
  padded.push_back(0);
  EXPECT_FALSE(
      wire::DecodeRequestPayload(padded.data(), padded.size(), 1).ok());
  // A count field pointing past the buffer.
  std::vector<std::uint8_t> lying(payload, payload + payload_len);
  lying[6] = 0xFF;  // num_symptoms low byte
  lying[7] = 0xFF;
  EXPECT_FALSE(
      wire::DecodeRequestPayload(lying.data(), lying.size(), 1).ok());

  // Truncated v2 frames must error too, never read past the buffer.
  serve::Request v2_request;
  v2_request.symptoms = {1, 2};
  v2_request.top_k = 5;
  v2_request.request_id = "abc";
  v2_request.attribution = true;
  auto v2_frame = wire::EncodeRequest(v2_request);
  ASSERT_TRUE(v2_frame.ok());
  const std::uint8_t* v2_payload = v2_frame->data() + wire::kHeaderBytes;
  const std::size_t v2_len = v2_frame->size() - wire::kHeaderBytes;
  for (std::size_t cut = 0; cut < v2_len; ++cut) {
    EXPECT_FALSE(wire::DecodeRequestPayload(v2_payload, cut, 2).ok()) << cut;
  }
}

// --------------------------------------------------------------------------
// HTTP parsing
// --------------------------------------------------------------------------

TEST(HttpTest, ParsesRequestLineAndQuery) {
  auto request = http::ParseRequest(
      "GET /v1/recommend?symptoms=1,4,9&k=10&model=m HTTP/1.1\r\n"
      "Host: localhost\r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/v1/recommend");
  EXPECT_EQ(request->query.at("symptoms"), "1,4,9");
  EXPECT_EQ(request->query.at("k"), "10");
  EXPECT_EQ(request->query.at("model"), "m");
  EXPECT_TRUE(request->keep_alive);
}

TEST(HttpTest, HonoursConnectionClose) {
  auto request = http::ParseRequest(
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_FALSE(request->keep_alive);
}

TEST(HttpTest, RejectsMalformedHeads) {
  EXPECT_FALSE(http::ParseRequest("garbage\r\n\r\n").ok());
  EXPECT_FALSE(http::ParseRequest("GET /x SMTP/1.0\r\n\r\n").ok());
  EXPECT_FALSE(http::ParseRequest("GET relative HTTP/1.1\r\n\r\n").ok());
}

TEST(HttpTest, ParseIntList) {
  auto ids = http::ParseIntList("1,4,9");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<int>{1, 4, 9}));
  EXPECT_FALSE(http::ParseIntList("").ok());
  EXPECT_FALSE(http::ParseIntList("1,,3").ok());
  EXPECT_FALSE(http::ParseIntList("1,x").ok());
}

// --------------------------------------------------------------------------
// Server end-to-end
// --------------------------------------------------------------------------

TEST(ServerTest, BinaryRoundTripMatchesInProcessHandle) {
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());

  ClientOptions copts;
  copts.port = (*server)->port();
  auto client = Client::Connect(copts);
  ASSERT_TRUE(client.ok());

  serve::Request request;
  request.symptoms = {2, 4, 6};
  request.top_k = 7;
  const serve::Response local = manager->Handle(request);
  ASSERT_TRUE(local.ok());

  auto remote = (*client)->Call(request);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->status, serve::StatusCode::kOk);
  EXPECT_EQ(remote->herb_ids, local.herb_ids);
  EXPECT_EQ(remote->model, "test-ckpt");
  EXPECT_EQ(remote->version, "v1");
  // v1 client fields: the server still minted and echoed a correlation id.
  EXPECT_FALSE(remote->request_id.empty());
}

TEST(ServerTest, BinaryAttributionAndRequestIdRoundTrip) {
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());
  ClientOptions copts;
  copts.port = (*server)->port();
  auto client = Client::Connect(copts);
  ASSERT_TRUE(client.ok());

  serve::Request request;
  request.symptoms = {2, 4, 6};
  request.top_k = 7;
  request.request_id = "wire-audit-1";
  request.attribution = true;
  auto response = (*client)->Call(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok()) << response->message;
  EXPECT_EQ(response->request_id, "wire-audit-1");
  ASSERT_TRUE(response->attribution.has_value());
  const audit::QueryAttribution& attr = *response->attribution;
  EXPECT_EQ(attr.symptom_ids, (std::vector<int>{2, 4, 6}));
  ASSERT_EQ(attr.herbs.size(), response->herb_ids.size());
  for (std::size_t i = 0; i < attr.herbs.size(); ++i) {
    const audit::HerbAttribution& herb = attr.herbs[i];
    EXPECT_EQ(herb.herb_id, response->herb_ids[i]);
    EXPECT_TRUE(herb.has_components);
    EXPECT_TRUE(herb.exact);
    // f64 engine + f64 wire bit patterns: both reconstructions survive the
    // network hop bit-exactly.
    EXPECT_EQ(herb.bipar + herb.synergy, herb.score);
    EXPECT_EQ(audit::ReconstructPooled(herb), herb.score);
  }

  // The same query without the flag returns no attribution block.
  serve::Request plain = request;
  plain.request_id.clear();
  plain.attribution = false;
  auto bare = (*client)->Call(plain);
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(bare->attribution.has_value());
  EXPECT_FALSE(bare->request_id.empty());
  EXPECT_EQ(bare->herb_ids, response->herb_ids);
}

TEST(ServerTest, HttpAttributionAndRequestIdEcho) {
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = (*server)->port();

  auto result = HttpGet(
      "127.0.0.1", port,
      "/v1/recommend?symptoms=2,4,6&k=7&attribution=1&request_id=http-9");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 200);
  EXPECT_NE(result->head.find("X-Request-Id: http-9"), std::string::npos)
      << result->head;
  EXPECT_NE(result->body.find("\"request_id\":\"http-9\""),
            std::string::npos)
      << result->body;
  EXPECT_NE(result->body.find("\"attribution\":{"), std::string::npos);
  EXPECT_NE(result->body.find("\"bipar\":"), std::string::npos);
  EXPECT_NE(result->body.find("\"synergy\":"), std::string::npos);
  EXPECT_NE(result->body.find("\"per_symptom\":["), std::string::npos);

  // Without the opt-in the body carries a minted id but no attribution.
  auto plain = HttpGet("127.0.0.1", port, "/v1/recommend?symptoms=2,4,6&k=7");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->body.find("\"attribution\""), std::string::npos);
  EXPECT_NE(plain->head.find("X-Request-Id: "), std::string::npos);
}

TEST(ServerTest, PipelinedResponsesComeBackInOrder) {
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());
  ClientOptions copts;
  copts.port = (*server)->port();
  auto client = Client::Connect(copts);
  ASSERT_TRUE(client.ok());

  // Distinct top_k per request tags each response with its request.
  constexpr int kDepth = 8;
  for (int i = 0; i < kDepth; ++i) {
    serve::Request request;
    request.symptoms = {1, 2, 3};
    request.top_k = static_cast<std::size_t>(i + 1);
    ASSERT_TRUE((*client)->Send(request).ok());
  }
  for (int i = 0; i < kDepth; ++i) {
    auto response = (*client)->Receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->ok()) << response->message;
    EXPECT_EQ(response->herb_ids.size(), static_cast<std::size_t>(i + 1));
  }
}

TEST(ServerTest, InvalidRequestGetsErrorResponseAndConnectionSurvives) {
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());
  ClientOptions copts;
  copts.port = (*server)->port();
  auto client = Client::Connect(copts);
  ASSERT_TRUE(client.ok());

  // Framing-valid but semantically invalid: out-of-range symptom.
  serve::Request bad;
  bad.symptoms = {9999};
  bad.top_k = 5;
  auto response = (*client)->Call(bad);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, serve::StatusCode::kInvalidArgument);

  // The stream is intact: a good request on the same connection works.
  serve::Request good;
  good.symptoms = {1, 2};
  good.top_k = 5;
  auto next = (*client)->Call(good);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->ok());
}

TEST(ServerTest, MalformedHeaderGetsErrorFrameThenClose) {
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());

  auto fd = ConnectTcp("127.0.0.1", (*server)->port(), 2000);
  ASSERT_TRUE(fd.ok());
  // Valid request magic (so the connection sniffs as binary), then a frame
  // declaring an oversized payload.
  std::uint8_t evil[wire::kHeaderBytes] = {wire::kRequestMagic,
                                           wire::kWireVersion, 0, 0, 0, 0};
  const std::uint32_t oversized = wire::kMaxPayloadBytes + 1;
  evil[2] = static_cast<std::uint8_t>(oversized & 0xFF);
  evil[3] = static_cast<std::uint8_t>((oversized >> 8) & 0xFF);
  evil[4] = static_cast<std::uint8_t>((oversized >> 16) & 0xFF);
  evil[5] = static_cast<std::uint8_t>((oversized >> 24) & 0xFF);
  ASSERT_TRUE(WriteAll(fd->get(), evil, sizeof(evil), 2000).ok());

  // The server answers with one parseable error frame...
  std::uint8_t header[wire::kHeaderBytes];
  ASSERT_TRUE(ReadExact(fd->get(), header, sizeof(header), 2000).ok());
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  ASSERT_TRUE(
      wire::DecodeHeader(header, wire::kResponseMagic, &payload_len, &version)
          .ok());
  std::vector<std::uint8_t> payload(payload_len);
  ASSERT_TRUE(
      ReadExact(fd->get(), payload.data(), payload.size(), 2000).ok());
  auto response =
      wire::DecodeResponsePayload(payload.data(), payload.size(), version);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, serve::StatusCode::kInvalidArgument);

  // ...then closes the stream.
  std::uint8_t byte = 0;
  const Status eof = ReadExact(fd->get(), &byte, 1, 2000);
  EXPECT_EQ(eof.code(), smgcn::StatusCode::kUnavailable) << eof.ToString();
}

TEST(ServerTest, HttpEndpoints) {
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = (*server)->port();

  auto health = HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  auto recommend =
      HttpGet("127.0.0.1", port, "/v1/recommend?symptoms=2,4,6&k=7");
  ASSERT_TRUE(recommend.ok());
  EXPECT_EQ(recommend->status, 200);
  EXPECT_NE(recommend->body.find("\"status\":\"OK\""), std::string::npos)
      << recommend->body;
  EXPECT_NE(recommend->body.find("\"herb_ids\":["), std::string::npos);

  auto bad = HttpGet("127.0.0.1", port, "/v1/recommend?symptoms=&k=7");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);

  auto models = HttpGet("127.0.0.1", port, "/v1/models");
  ASSERT_TRUE(models.ok());
  EXPECT_EQ(models->status, 200);
  EXPECT_NE(models->body.find("\"test-ckpt\""), std::string::npos);
  EXPECT_NE(models->body.find("\"v1\""), std::string::npos);

  auto metrics = HttpGet("127.0.0.1", port, "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  // Prometheus text exposition: TYPE comments plus this server's counters.
  EXPECT_NE(metrics->body.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics->body.find("smgcn_"), std::string::npos);

  auto slowlog = HttpGet("127.0.0.1", port, "/slowlog");
  ASSERT_TRUE(slowlog.ok());
  EXPECT_EQ(slowlog->status, 200);

  auto missing = HttpGet("127.0.0.1", port, "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST(ServerTest, WireSheddingWhenQueueIsFull) {
  serve::ModelManagerOptions mopts;
  mopts.engine_options.max_batch_size = 64;
  mopts.engine_options.max_wait_ms = 400.0;  // hold the queue
  mopts.engine_options.max_queue_depth = 2;
  mopts.engine_options.cache_capacity = 0;
  auto manager = MakeManager(mopts);
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());
  ClientOptions copts;
  copts.port = (*server)->port();
  auto client = Client::Connect(copts);
  ASSERT_TRUE(client.ok());

  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) {
    serve::Request request;
    request.symptoms = {1, 2};
    request.top_k = 5;
    ASSERT_TRUE((*client)->Send(request).ok());
  }
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto response = (*client)->Receive();
    ASSERT_TRUE(response.ok());
    if (response->ok()) {
      ++ok;
    } else {
      // RESOURCE_EXHAUSTED on the wire — distinguishable from a timeout.
      ASSERT_EQ(response->status, serve::StatusCode::kShedding)
          << response->message;
      ++shed;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, kBurst - 2);
}

TEST(ServerTest, GracefulDrainAnswersAcceptedRequests) {
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = (*server)->port();

  ClientOptions copts;
  copts.port = port;
  auto client = Client::Connect(copts);
  ASSERT_TRUE(client.ok());

  constexpr int kInflight = 6;
  for (int i = 0; i < kInflight; ++i) {
    serve::Request request;
    request.symptoms = {1, 2, 3};
    request.top_k = 5;
    ASSERT_TRUE((*client)->Send(request).ok());
  }
  // Drain guarantees answers for *admitted* requests, so wait until the
  // server has read all six off the socket before stopping.
  const auto* admitted = obs::Registry::Global().GetCounter(
      (*server)->obs_prefix() + "binary_requests");
  for (int spin = 0; spin < 2000 && admitted->value() < kInflight; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(admitted->value(), static_cast<std::uint64_t>(kInflight));
  // Stop from another thread while responses are outstanding: the drain
  // must flush every admitted request before the connection closes.
  std::thread stopper([&server] { (*server)->Stop(); });
  int answered = 0;
  for (int i = 0; i < kInflight; ++i) {
    auto response = (*client)->Receive();
    if (!response.ok()) break;  // closed after the flush
    EXPECT_TRUE(response->ok()) << response->message;
    ++answered;
  }
  stopper.join();
  EXPECT_EQ(answered, kInflight);

  // After Stop: no new connections...
  EXPECT_FALSE(Client::Connect(copts).ok());
  // ...but the manager itself still serves in-process callers.
  serve::Request request;
  request.symptoms = {1};
  request.top_k = 5;
  EXPECT_TRUE(manager->Handle(request).ok());
}

TEST(ServerTest, ConcurrentConnectPublishQueryHammer) {
  // TSan target: clients connecting/querying over both protocols while
  // versions publish and /metrics is scraped. Correctness bar: no data
  // races, no crashes, and every wire response is parseable.
  auto manager = MakeManager();
  auto server = Server::Start(manager.get());
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = (*server)->port();

  std::atomic<bool> stop{false};
  std::atomic<int> wire_ok{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([port, &stop, &wire_ok] {
      while (!stop.load(std::memory_order_relaxed)) {
        ClientOptions copts;
        copts.port = port;
        auto client = Client::Connect(copts);
        if (!client.ok()) continue;
        for (int i = 0; i < 5; ++i) {
          serve::Request request;
          request.symptoms = {1 + i, 7};
          request.top_k = 5;
          auto response = (*client)->Call(request);
          if (response.ok() && response->ok()) {
            wire_ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  threads.emplace_back([port, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)HttpGet("127.0.0.1", port, "/metrics", 2000);
      (void)HttpGet("127.0.0.1", port, "/v1/recommend?symptoms=1,2&k=5",
                    2000);
    }
  });
  threads.emplace_back([&manager, &stop] {
    int v = 2;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)manager->Publish(MakeCheckpoint(), "v" + std::to_string(v++));
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  EXPECT_GT(wire_ok.load(), 0);
  (*server)->Stop();
}

}  // namespace
}  // namespace net
}  // namespace smgcn
