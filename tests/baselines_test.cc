// Tests for the GNN baselines (GC-MC, PinSage, NGCF, HeteGCN) and the
// model registry: each baseline must train, score sanely, and beat the
// popularity heuristic on the synthetic corpus.
#include <gtest/gtest.h>

#include "src/baselines/gcmc.h"
#include "src/baselines/hetegcn.h"
#include "src/baselines/ngcf.h"
#include "src/baselines/pinsage.h"
#include "src/core/registry.h"
#include "tests/test_util.h"

namespace smgcn {
namespace baselines {
namespace {

core::TrainConfig FastTrain() {
  core::TrainConfig train;
  train.learning_rate = 3e-3;
  train.l2_lambda = 1e-5;
  train.batch_size = 128;
  train.epochs = 25;
  train.seed = 3;
  return train;
}

core::ModelConfig BaseModel(std::vector<std::size_t> dims) {
  core::ModelConfig model;
  model.embedding_dim = 16;
  model.layer_dims = std::move(dims);
  model.thresholds = {2, 5};
  return model;
}

template <typename ModelT>
void ExpectTrainsAndBeatsPopularity(ModelT* model, const char* label) {
  const auto split = testutil::SmallSplit();
  ASSERT_TRUE(model->Fit(split.train).ok()) << label;
  auto report = eval::Evaluate(model->AsScorer(), split.test);
  auto pop = eval::Evaluate(testutil::PopularityScorer(split.train), split.test);
  ASSERT_TRUE(report.ok()) << label;
  ASSERT_TRUE(pop.ok());
  EXPECT_GT(report->At(20).recall, pop->At(20).recall) << label;
  const auto& losses = model->train_summary().epoch_losses;
  EXPECT_LT(losses.back(), losses.front()) << label;
}

TEST(GcMcTest, TrainsAndLearns) {
  GcMc model(BaseModel({}), FastTrain());
  EXPECT_EQ(model.name(), "GC-MC");
  ExpectTrainsAndBeatsPopularity(&model, "GC-MC");
}

TEST(GcMcTest, OutputDimIsEmbeddingDim) {
  const auto split = testutil::SmallSplit();
  GcMc model(BaseModel({}), FastTrain());
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_EQ(model.symptom_embeddings().cols(), 16u);
}

TEST(PinSageTest, TrainsAndLearns) {
  PinSage model(BaseModel({16, 16}), FastTrain());
  EXPECT_EQ(model.name(), "PinSage");
  ExpectTrainsAndBeatsPopularity(&model, "PinSage");
}

TEST(NgcfTest, TrainsAndLearns) {
  Ngcf model(BaseModel({16, 16}), FastTrain());
  EXPECT_EQ(model.name(), "NGCF");
  ExpectTrainsAndBeatsPopularity(&model, "NGCF");
}

TEST(NgcfTest, LayerConcatenationWidensOutput) {
  const auto split = testutil::SmallSplit();
  Ngcf model(BaseModel({16, 16}), FastTrain());
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_EQ(model.symptom_embeddings().cols(), 48u);  // 16 + 16 + 16
}

TEST(HeteGcnTest, TrainsAndLearns) {
  HeteGcn model(BaseModel({24}), FastTrain());
  EXPECT_EQ(model.name(), "HeteGCN");
  ExpectTrainsAndBeatsPopularity(&model, "HeteGCN");
}

TEST(HeteGcnTest, RejectsMultiLayerConfig) {
  const auto split = testutil::SmallSplit();
  HeteGcn model(BaseModel({24, 24}), FastTrain());
  EXPECT_EQ(model.Fit(split.train).code(), StatusCode::kInvalidArgument);
}

TEST(BaselineContractTest, ScoreErrorsMatchInterface) {
  const auto split = testutil::SmallSplit();
  PinSage model(BaseModel({16}), FastTrain());
  EXPECT_EQ(model.Score({0}).status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(model.Fit(split.train).ok());
  EXPECT_EQ(model.Score({}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model.Score({-5}).status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

TEST(RegistryTest, AllRegisteredNamesConstruct) {
  for (const std::string& name : core::RegisteredModelNames()) {
    core::ModelSpec spec = core::DefaultSpecFor(name);
    auto model = core::MakeModel(spec);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ((*model)->name(), name);
  }
}

TEST(RegistryTest, TableFourModelsAllRegistered) {
  // The six models of the paper's Table IV must all be constructible —
  // guards against registry renames breaking the experiment harness.
  for (const std::string name :
       {"HC-KGETM", "GC-MC", "PinSage", "NGCF", "HeteGCN", "SMGCN"}) {
    auto model = core::MakeModel(core::DefaultSpecFor(name));
    ASSERT_TRUE(model.ok()) << name;
  }
}

TEST(RegistryTest, AttentionVariantConstructs) {
  auto model = core::MakeModel(core::DefaultSpecFor("SMGCN-Att"));
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "SMGCN-Att");
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  core::ModelSpec spec;
  spec.name = "DoesNotExist";
  EXPECT_EQ(core::MakeModel(spec).status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, SubmodelFlagsAreForcedByName) {
  core::ModelSpec spec = core::DefaultSpecFor("Bipar-GCN");
  spec.model.use_sge = true;     // must be overridden by the name
  spec.model.use_si_mlp = true;  // must be overridden by the name
  auto model = core::MakeModel(spec);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "Bipar-GCN");
}

TEST(RegistryTest, RegistryModelTrainsEndToEnd) {
  const auto split = testutil::SmallSplit();
  core::ModelSpec spec = core::DefaultSpecFor("SMGCN");
  spec.model.embedding_dim = 16;
  spec.model.layer_dims = {24, 24};
  spec.model.thresholds = {2, 5};
  spec.train.epochs = 6;
  spec.train.batch_size = 128;
  auto model = core::MakeModel(spec);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(split.train).ok());
  auto report = eval::Evaluate((*model)->AsScorer(), split.test);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->At(20).recall, 0.2);
}

}  // namespace
}  // namespace baselines
}  // namespace smgcn
