#include "src/obs/trace.h"

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace smgcn {
namespace obs {
namespace trace {
namespace {

std::size_t CountSubstring(const std::string& text, const std::string& what) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(what); pos != std::string::npos;
       pos = text.find(what, pos + what.size())) {
    ++count;
  }
  return count;
}

/// Parsed "real" event (metadata rows excluded): tid + ts + phase.
struct ParsedEvent {
  int tid = 0;
  double ts = 0.0;
  char phase = '?';
};

/// The export puts one event per line; this scans them without a JSON
/// parser so the test exercises the raw bytes the browser would see.
std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::size_t line_start = 0;
  while (line_start < json.size()) {
    std::size_t line_end = json.find('\n', line_start);
    if (line_end == std::string::npos) line_end = json.size();
    const std::string line = json.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ParsedEvent event;
    char phase_buf[4] = {0};
    // Metadata rows ("ph":"M") have no "ts" and do not match this format.
    if (std::sscanf(line.c_str(),
                    "{\"ph\":\"%1[BEi]\",\"pid\":1,\"tid\":%d,\"ts\":%lf",
                    phase_buf, &event.tid, &event.ts) == 3) {
      event.phase = phase_buf[0];
      events.push_back(event);
    }
  }
  return events;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceBuffer::Global().ResetForTest();
    Registry::Global().GetCounter("obs.trace.dropped_events")->Reset();
  }
  void TearDown() override { TraceBuffer::Global().ResetForTest(); }
};

TEST_F(TraceTest, DisabledByDefaultAndEmitIsNoOp) {
  EXPECT_FALSE(Enabled());
  const std::uint32_t id = InternName("trace_test.noop");
  EmitBegin(id);
  EmitEnd(id);
  EXPECT_EQ(Stats().emitted, 0u);
}

TEST_F(TraceTest, InternNameIsStableAndNonZero) {
  const std::uint32_t a = InternName("trace_test.a");
  const std::uint32_t b = InternName("trace_test.b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, InternName("trace_test.a"));
}

TEST_F(TraceTest, ExportsMatchedBeginEndPairs) {
  Start();
  const std::uint32_t id = InternName("trace_test.pair");
  for (int i = 0; i < 5; ++i) {
    EmitBegin(id);
    EmitEnd(id);
  }
  Instant("trace_test.blip");
  Stop();

  const std::string json = ExportChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(CountSubstring(json, "\"ph\":\"B\""), 5u);
  EXPECT_EQ(CountSubstring(json, "\"ph\":\"E\""), 5u);
  EXPECT_EQ(CountSubstring(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("trace_test.pair"), std::string::npos);
  EXPECT_NE(json.find("trace_test.blip"), std::string::npos);
}

TEST_F(TraceTest, OrphanEndIsDroppedAndUnclosedBeginIsClosed) {
  Start();
  const std::uint32_t id = InternName("trace_test.orphan");
  EmitEnd(id);    // no matching begin: must not survive export
  EmitBegin(id);  // never closed: exporter synthesizes the end
  Stop();

  const std::string json = ExportChromeTrace();
  EXPECT_EQ(CountSubstring(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(CountSubstring(json, "\"ph\":\"E\""), 1u);
}

TEST_F(TraceTest, OverflowCountsDropsAndExportStaysWellFormed) {
  Counter* dropped = Registry::Global().GetCounter("obs.trace.dropped_events");
  TraceOptions options;
  options.events_per_thread = 64;
  Start(options);
  const std::uint32_t id = InternName("trace_test.wrap");
  const std::uint64_t pairs = 500;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    EmitBegin(id);
    EmitEnd(id);
  }
  Stop();

  const TraceStats stats = Stats();
  EXPECT_EQ(stats.emitted, 2 * pairs);
  EXPECT_EQ(stats.retained, 64u);
  EXPECT_EQ(stats.dropped, 2 * pairs - 64);
  EXPECT_EQ(dropped->value(), 2 * pairs - 64);

  // After wraparound the window can open mid-span; the repair pass must
  // still pair every B with an E and keep timestamps monotone per thread.
  const std::string json = ExportChromeTrace();
  EXPECT_EQ(CountSubstring(json, "\"ph\":\"B\""),
            CountSubstring(json, "\"ph\":\"E\""));
  std::map<int, double> last_ts;
  std::map<int, int> open_depth;
  for (const ParsedEvent& event : ParseEvents(json)) {
    auto it = last_ts.find(event.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(event.ts, it->second);
    }
    last_ts[event.tid] = event.ts;
    if (event.phase == 'B') ++open_depth[event.tid];
    if (event.phase == 'E') {
      --open_depth[event.tid];
      EXPECT_GE(open_depth[event.tid], 0);
    }
  }
  for (const auto& [tid, depth] : open_depth) EXPECT_EQ(depth, 0) << tid;
}

TEST_F(TraceTest, ThreadNamesAppearAsMetadata) {
  SetCurrentThreadName("trace_test.main");
  Start();
  EmitBegin(InternName("trace_test.named"));
  Stop();
  const std::string json = ExportChromeTrace();
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("trace_test.main"), std::string::npos);
}

TEST_F(TraceTest, ScopedSpanEmitsIntoTimeline) {
  Start();
  { ScopedSpan span("trace_test.scoped"); }
  Stop();
  const std::string json = ExportChromeTrace();
  EXPECT_EQ(CountSubstring(json, "trace_test.scoped"), 2u);  // one B, one E
  // The histogram side of the span is unaffected by tracing.
  EXPECT_GE(Registry::Global()
                .GetHistogram(SpanHistogramName("trace_test.scoped"))
                ->count(),
            1u);
}

TEST_F(TraceTest, ConcurrentEmittersWithMidFlightExport) {
  TraceOptions options;
  options.events_per_thread = 256;  // force wraparound under load
  Start(options);
  const std::uint32_t id = InternName("trace_test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPairsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, id] {
      SetCurrentThreadName("trace_test.worker" + std::to_string(t));
      for (int i = 0; i < kPairsPerThread; ++i) {
        EmitBegin(id);
        EmitEnd(id);
      }
    });
  }
  // Export while the emitters are running: must not crash or deadlock and
  // must produce well-formed output from the torn snapshot.
  for (int round = 0; round < 3; ++round) {
    const std::string json = ExportChromeTrace();
    EXPECT_EQ(CountSubstring(json, "\"ph\":\"B\""),
              CountSubstring(json, "\"ph\":\"E\""));
  }
  for (auto& thread : threads) thread.join();
  Stop();

  const std::string json = ExportChromeTrace();
  EXPECT_EQ(CountSubstring(json, "\"ph\":\"B\""),
            CountSubstring(json, "\"ph\":\"E\""));
  const TraceStats stats = Stats();
  EXPECT_EQ(stats.emitted,
            static_cast<std::uint64_t>(kThreads) * 2 * kPairsPerThread);
  EXPECT_GE(stats.threads, static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, ResetKeepsInternedIdsValid) {
  const std::uint32_t id = InternName("trace_test.sticky");
  Start();
  EmitBegin(id);
  EmitEnd(id);
  TraceBuffer::Global().ResetForTest();
  EXPECT_FALSE(Enabled());
  EXPECT_EQ(Stats().emitted, 0u);
  EXPECT_EQ(InternName("trace_test.sticky"), id);
}

}  // namespace
}  // namespace trace
}  // namespace obs
}  // namespace smgcn
