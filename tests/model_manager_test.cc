// Tests for smgcn::serve::ModelManager: versioned publish / rollback /
// retire semantics, artifact-path publishing, per-model engine isolation,
// the serve.modelmanager.* instruments, and a concurrent publish/query
// hammer (run under TSan in CI) proving every response is attributable to
// exactly one published version.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/core/artifact.h"
#include "src/core/checkpoint.h"
#include "src/obs/registry.h"
#include "src/serve/engine.h"
#include "src/serve/model_manager.h"
#include "src/tensor/matrix.h"

namespace smgcn {
namespace serve {
namespace {

using tensor::Matrix;

constexpr std::size_t kSymptoms = 6;
constexpr std::size_t kHerbs = 10;
constexpr std::size_t kDim = 4;

// A checkpoint whose every embedding entry is `value` and that has no SI
// MLP, so scoring query {s} yields exactly kDim * value^2 for every herb.
// Distinct per-version values make each response attributable to exactly
// one published version by inspection.
core::InferenceCheckpoint ConstantCheckpoint(const std::string& name,
                                             double value) {
  core::InferenceCheckpoint ckpt;
  ckpt.model_name = name;
  ckpt.symptom_embeddings = Matrix(kSymptoms, kDim, value);
  ckpt.herb_embeddings = Matrix(kHerbs, kDim, value);
  ckpt.has_si_mlp = false;
  return ckpt;
}

double ExpectedScore(double value) {
  return static_cast<double>(kDim) * value * value;
}

ModelManagerOptions QuietOptions() {
  ModelManagerOptions options;
  options.engine_options.cache_capacity = 64;
  return options;
}

TEST(ModelManagerTest, CreateRejectsBadOptions) {
  ModelManagerOptions options;
  options.retain_versions = 0;
  EXPECT_EQ(ModelManager::Create(options).status().code(),
            smgcn::StatusCode::kInvalidArgument);
  options = ModelManagerOptions{};
  options.engine_options.max_batch_size = 0;
  EXPECT_EQ(ModelManager::Create(options).status().code(),
            smgcn::StatusCode::kInvalidArgument);
}

TEST(ModelManagerTest, PublishRouteAndList) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());

  auto receipt = (*manager)->Publish(ConstantCheckpoint("herbs", 1.0), "v1");
  ASSERT_TRUE(receipt.ok()) << receipt.status();
  EXPECT_EQ(receipt->model, "herbs");
  EXPECT_EQ(receipt->version, "v1");

  auto version = (*manager)->ActiveVersion("herbs");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, "v1");

  auto scores = (*manager)->Score("herbs", {0});
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), kHerbs);
  for (double s : *scores) EXPECT_DOUBLE_EQ(s, ExpectedScore(1.0));

  auto topk = (*manager)->Recommend("herbs", {0, 2}, 3);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->size(), 3u);

  const auto models = (*manager)->ListModels();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].name, "herbs");
  EXPECT_EQ(models[0].active_version, "v1");
  ASSERT_EQ(models[0].versions.size(), 1u);
  EXPECT_TRUE(models[0].versions[0].active);
  EXPECT_EQ(models[0].versions[0].num_herbs, kHerbs);

  EXPECT_EQ((*manager)->Score("nope", {0}).status().code(),
            smgcn::StatusCode::kNotFound);
}

TEST(ModelManagerTest, PublishSwapsScoresAtomically) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 1.0), "v1").ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 2.0), "v2").ok());

  auto scores = (*manager)->Score("m", {1});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], ExpectedScore(2.0));
  EXPECT_EQ(*(*manager)->ActiveVersion("m"), "v2");

  // The engine (and its stats) survive the swap.
  auto engine = (*manager)->Engine("m");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->active_version(), "v2");
}

TEST(ModelManagerTest, DuplicateVersionIsRejected) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 1.0), "v1").ok());
  EXPECT_EQ(
      (*manager)->Publish(ConstantCheckpoint("m", 2.0), "v1").status().code(),
      smgcn::StatusCode::kAlreadyExists);
  // The active version is untouched by the failed publish.
  EXPECT_EQ(*(*manager)->ActiveVersion("m"), "v1");
  auto scores = (*manager)->Score("m", {0});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], ExpectedScore(1.0));
}

TEST(ModelManagerTest, FailedFirstPublishLeavesNoModelBehind) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  core::InferenceCheckpoint bad;  // empty: fails validation
  bad.model_name = "ghost";
  EXPECT_FALSE((*manager)->Publish(std::move(bad), "v1").ok());
  EXPECT_EQ((*manager)->Engine("ghost").status().code(), smgcn::StatusCode::kNotFound);
  EXPECT_TRUE((*manager)->ListModels().empty());
}

TEST(ModelManagerTest, RollbackReactivatesPredecessor) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 1.0), "v1").ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 2.0), "v2").ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 3.0), "v3").ok());

  ASSERT_TRUE((*manager)->Rollback("m").ok());
  EXPECT_EQ(*(*manager)->ActiveVersion("m"), "v2");
  auto scores = (*manager)->Score("m", {0});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], ExpectedScore(2.0));

  ASSERT_TRUE((*manager)->Rollback("m").ok());
  EXPECT_EQ(*(*manager)->ActiveVersion("m"), "v1");
  // Only one version left: nothing to roll back to.
  EXPECT_EQ((*manager)->Rollback("m").code(),
            smgcn::StatusCode::kFailedPrecondition);
  EXPECT_EQ((*manager)->Rollback("nope").code(), smgcn::StatusCode::kNotFound);
}

TEST(ModelManagerTest, RetireDropsOnlyInactiveVersions) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 1.0), "v1").ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 2.0), "v2").ok());

  EXPECT_EQ((*manager)->Retire("m", "v2").code(),
            smgcn::StatusCode::kFailedPrecondition);  // active
  EXPECT_EQ((*manager)->Retire("m", "v9").code(), smgcn::StatusCode::kNotFound);
  EXPECT_EQ((*manager)->Retire("nope", "v1").code(), smgcn::StatusCode::kNotFound);
  ASSERT_TRUE((*manager)->Retire("m", "v1").ok());

  const auto models = (*manager)->ListModels();
  ASSERT_EQ(models.size(), 1u);
  ASSERT_EQ(models[0].versions.size(), 1u);
  EXPECT_EQ(models[0].versions[0].version, "v2");
}

TEST(ModelManagerTest, RetentionBoundsHistory) {
  ModelManagerOptions options = QuietOptions();
  options.retain_versions = 2;
  auto manager = ModelManager::Create(options);
  ASSERT_TRUE(manager.ok());
  for (int i = 1; i <= 4; ++i) {
    std::string version = "v";
    version += std::to_string(i);
    ASSERT_TRUE(
        (*manager)->Publish(ConstantCheckpoint("m", i), version).ok());
  }
  const auto models = (*manager)->ListModels();
  ASSERT_EQ(models.size(), 1u);
  ASSERT_EQ(models[0].versions.size(), 2u);
  EXPECT_EQ(models[0].versions[0].version, "v3");
  EXPECT_EQ(models[0].versions[1].version, "v4");
  EXPECT_EQ(models[0].active_version, "v4");
  // v1/v2 are gone: re-publishing v1 is allowed again.
  EXPECT_TRUE((*manager)->Publish(ConstantCheckpoint("m", 1.0), "v1").ok());
}

TEST(ModelManagerTest, ModelsAreIsolated) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("a", 1.0), "v1").ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("b", 3.0), "v7").ok());

  auto a = (*manager)->Score("a", {0});
  auto b = (*manager)->Score("b", {0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ((*a)[0], ExpectedScore(1.0));
  EXPECT_DOUBLE_EQ((*b)[0], ExpectedScore(3.0));

  const auto models = (*manager)->ListModels();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0].name, "a");  // sorted by name
  EXPECT_EQ(models[1].name, "b");
}

TEST(ModelManagerTest, PublishArtifactUsesEmbeddedIdentity) {
  const std::string path = testing::TempDir() + "/smgcn_mm_artifact.smga";
  ASSERT_TRUE(core::SaveArtifact(ConstantCheckpoint("artifact-model", 2.0),
                                 "2026-08-08-b", path)
                  .ok());

  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  auto receipt = (*manager)->PublishArtifact(path);
  ASSERT_TRUE(receipt.ok()) << receipt.status();
  EXPECT_EQ(receipt->model, "artifact-model");
  EXPECT_EQ(receipt->version, "2026-08-08-b");

  auto scores = (*manager)->Score("artifact-model", {0});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], ExpectedScore(2.0));

  // Same version again: rejected, identity comes from the file.
  EXPECT_EQ((*manager)->PublishArtifact(path).status().code(),
            smgcn::StatusCode::kAlreadyExists);
  // A damaged file never touches serving state.
  EXPECT_FALSE((*manager)->PublishArtifact("/no/such.smga").ok());
  EXPECT_EQ(*(*manager)->ActiveVersion("artifact-model"), "2026-08-08-b");
}

TEST(ModelManagerTest, PublishArtifactServesF32StoreAtF32Precision) {
  const std::string path = testing::TempDir() + "/smgcn_mm_artifact_f32.smga";
  ASSERT_TRUE(core::SaveArtifact(ConstantCheckpoint("f32-model", 1.5),
                                 "2026-08-08-f32", path,
                                 tensor::Precision::kFloat32)
                  .ok());

  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  auto receipt = (*manager)->PublishArtifact(path);
  ASSERT_TRUE(receipt.ok()) << receipt.status();

  // The file's dtype carries through publish: the serving store runs the
  // f32 kernel path, not a widened f64 copy.
  auto engine = (*manager)->Engine("f32-model");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->Snapshot()->store.precision(),
            tensor::Precision::kFloat32);

  // 1.5 and its products are exact in f32, so scores are still exact.
  auto scores = (*manager)->Score("f32-model", {0});
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], ExpectedScore(1.5));
}

TEST(ModelManagerTest, PublishArtifactServesInt8StoreAtStoredPrecision) {
  const std::string path = testing::TempDir() + "/smgcn_mm_artifact_s8.smga";
  ASSERT_TRUE(core::SaveArtifact(ConstantCheckpoint("int8-model", 2.0),
                                 "2026-08-08-s8", path,
                                 tensor::Precision::kInt8)
                  .ok());

  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  auto receipt = (*manager)->PublishArtifact(path);
  ASSERT_TRUE(receipt.ok()) << receipt.status();
  EXPECT_EQ(receipt->model, "int8-model");
  EXPECT_EQ(receipt->version, "2026-08-08-s8");

  // The file's dtype carries through publish: the engine serves the
  // artifact's quantized integers through the int8 kernel path, not a
  // dequantized f64 copy.
  auto engine = (*manager)->Engine("int8-model");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->Snapshot()->store.precision(),
            tensor::Precision::kInt8);

  // Constant rows quantize to 127 * (value/127): scores land within f32
  // scale rounding of the exact kDim * value^2.
  auto scores = (*manager)->Score("int8-model", {0});
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR((*scores)[0], ExpectedScore(2.0), 1e-4 * ExpectedScore(2.0));
}

TEST(ModelManagerTest, InstrumentsAreRegistered) {
  auto* publishes =
      obs::Registry::Global().GetCounter("serve.modelmanager.publishes");
  auto* rollbacks =
      obs::Registry::Global().GetCounter("serve.modelmanager.rollbacks");
  auto* versions =
      obs::Registry::Global().GetGauge("serve.modelmanager.active_versions");
  auto* open_latency = obs::Registry::Global().GetHistogram(
      "serve.modelmanager.artifact_open.seconds");
  const std::uint64_t publishes_before = publishes->value();
  const std::uint64_t rollbacks_before = rollbacks->value();
  const std::uint64_t opens_before = open_latency->count();

  const std::string path = testing::TempDir() + "/smgcn_mm_metrics.smga";
  ASSERT_TRUE(
      core::SaveArtifact(ConstantCheckpoint("metrics-model", 1.0), "v1", path)
          .ok());
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->PublishArtifact(path).ok());
  ASSERT_TRUE(
      (*manager)->Publish(ConstantCheckpoint("metrics-model", 2.0), "v2").ok());
  ASSERT_TRUE((*manager)->Rollback("metrics-model").ok());

  EXPECT_EQ(publishes->value(), publishes_before + 2);
  EXPECT_EQ(rollbacks->value(), rollbacks_before + 1);
  EXPECT_EQ(open_latency->count(), opens_before + 1);
  EXPECT_GE(versions->value(), 1.0);
}

// --------------------------------------------------------------------------
// Concurrent publish/query hammer (exercised under TSan in CI)
// --------------------------------------------------------------------------

// Readers score continuously while a publisher hot-swaps versions and rolls
// back. Every response must be internally consistent (all herbs scored by
// the same embedding table) and attributable to exactly one version that
// was published at some point — a torn swap would produce a mixed-version
// score vector, a dropped query a non-OK status.
TEST(ModelManagerHammerTest, ConcurrentPublishAndQuery) {
  constexpr int kVersions = 24;
  constexpr int kReaders = 4;

  auto manager_or = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager_or.ok());
  ModelManager* manager = manager_or->get();
  ASSERT_TRUE(manager->Publish(ConstantCheckpoint("hammer", 1.0), "v1").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> responses{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const std::vector<int> symptoms = {r % static_cast<int>(kSymptoms)};
      while (!stop.load(std::memory_order_relaxed)) {
        auto scores = manager->Score("hammer", symptoms);
        if (!scores.ok() || scores->size() != kHerbs) {
          failures.fetch_add(1);
          continue;
        }
        const double first = (*scores)[0];
        // (a) internally consistent: one embedding table scored all herbs.
        for (double s : *scores) {
          if (s != first) failures.fetch_add(1);
        }
        // (b) attributable: matches ExpectedScore(v) for an integer version
        // value v in [1, kVersions].
        const double v = std::sqrt(first / static_cast<double>(kDim));
        const double rounded = std::round(v);
        if (rounded < 1.0 || rounded > kVersions ||
            first != ExpectedScore(rounded)) {
          failures.fetch_add(1);
        }
        responses.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Publisher: a stream of new versions (embedding values cycling through
  // [1, kVersions]) with occasional rollbacks, kept running until the
  // readers have scored plenty of queries across many swaps.
  constexpr std::uint64_t kMinResponses = 2000;
  int publish_count = 0;
  for (int i = 2; responses.load() < kMinResponses || i < kVersions; ++i) {
    ASSERT_LT(i, 100000) << "readers starved";  // runaway guard
    const double value = 1.0 + (i % kVersions);
    std::string version = "v";
    version += std::to_string(i);
    ASSERT_TRUE(
        manager->Publish(ConstantCheckpoint("hammer", value), version).ok());
    ++publish_count;
    if (i % 5 == 0) {
      ASSERT_TRUE(manager->Rollback("hammer").ok());
      // Re-publish under a fresh version id (the rolled-back id was
      // dropped from history, so it is reusable; use a suffix to keep
      // every publish unique).
      version += "r";
      ASSERT_TRUE(
          manager->Publish(ConstantCheckpoint("hammer", value), version).ok());
      ++publish_count;
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(responses.load(), kMinResponses);
  EXPECT_GT(publish_count, kVersions);
}

// --------------------------------------------------------------------------
// Request routing (Handle / SubmitRequest)
// --------------------------------------------------------------------------

TEST(ModelManagerRoutingTest, EmptyModelResolvesToSoleHostedModel) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("only", 1.0), "v1").ok());

  Request request;
  request.symptoms = {0, 2};
  request.top_k = 3;
  const Response response = (*manager)->Handle(request);
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_EQ(response.model, "only");
  EXPECT_EQ(response.version, "v1");
  EXPECT_EQ(response.herb_ids.size(), 3u);

  const Response async = (*manager)->SubmitRequest(request).get();
  ASSERT_TRUE(async.ok()) << async.message;
  EXPECT_EQ(async.herb_ids, response.herb_ids);
}

TEST(ModelManagerRoutingTest, EmptyModelIsAmbiguousWithSeveralHosted) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("a", 1.0), "v1").ok());
  ASSERT_TRUE((*manager)->Publish(ConstantCheckpoint("b", 2.0), "v1").ok());

  Request request;
  request.symptoms = {0};
  request.top_k = 3;
  EXPECT_EQ((*manager)->Handle(request).status,
            serve::StatusCode::kInvalidArgument);
  EXPECT_EQ((*manager)->SubmitRequest(request).get().status,
            serve::StatusCode::kInvalidArgument);

  // Naming the model disambiguates.
  request.model = "b";
  const Response response = (*manager)->Handle(request);
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_EQ(response.model, "b");
}

TEST(ModelManagerRoutingTest, NoModelsMeansUnavailable) {
  auto manager = ModelManager::Create(QuietOptions());
  ASSERT_TRUE(manager.ok());
  Request request;
  request.symptoms = {0};
  request.top_k = 3;
  EXPECT_EQ((*manager)->Handle(request).status,
            serve::StatusCode::kUnavailable);
  EXPECT_EQ((*manager)->SubmitRequest(request).get().status,
            serve::StatusCode::kUnavailable);

  // Unknown names route like Engine(): kUnavailable on the Response.
  request.model = "nope";
  EXPECT_EQ((*manager)->Handle(request).status,
            serve::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace serve
}  // namespace smgcn
