// Tests for src/obs: instrument semantics (including concurrent exactness
// — counts are never lost under contention), histogram percentile edge
// cases, registry create-on-first-use and scope allocation, ScopedSpan
// nesting, and golden snapshots of the three exporter formats.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace smgcn {
namespace obs {
namespace {

// --------------------------------------------------------------------------
// Instruments
// --------------------------------------------------------------------------

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddAndSetToMax) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.SetToMax(3.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.SetToMax(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  // Integer-valued doubles add exactly, so the CAS loop must account for
  // every one of the 8000 additions.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(GaugeTest, ConcurrentSetToMaxKeepsMaximum) {
  constexpr int kThreads = 8;
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 1000; ++i) {
        g.SetToMax(static_cast<double>(t * 1000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 7999.0);
}

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.0);
}

TEST(HistogramTest, SingleSampleIsReportedExactly) {
  // Regression: the bucket midpoint for a lone 100us sample is ~90.5us;
  // clamping to the recorded [min, max] must return the sample itself.
  Histogram h;
  h.Record(100e-6);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 100e-6);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 100e-6);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100e-6);
  EXPECT_DOUBLE_EQ(h.min(), 100e-6);
  EXPECT_DOUBLE_EQ(h.max(), 100e-6);
}

TEST(HistogramTest, IdenticalSamplesClampToThemselves) {
  Histogram h;
  for (int i = 0; i < 4; ++i) h.Record(120e-6);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 120e-6);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 120e-6);
  EXPECT_DOUBLE_EQ(h.mean(), 120e-6);
}

TEST(HistogramTest, OverflowBucketReportsMax) {
  // Regression: a sample beyond the last bucket's lower edge used to report
  // that bucket's midpoint (~2e8 for a 1e9 sample); the overflow bucket's
  // midpoint is meaningless, so it must report the recorded max instead.
  Histogram h;
  for (int i = 0; i < 9; ++i) h.Record(1e-6);
  h.Record(1e9);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1e9);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // The low samples still dominate the median (~2x bucket resolution).
  EXPECT_GT(h.Percentile(0.5), 0.5e-6);
  EXPECT_LT(h.Percentile(0.5), 3e-6);
}

TEST(HistogramTest, PercentilesBracketMixedSamples) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(100e-6);
  for (int i = 0; i < 10; ++i) h.Record(10e-3);
  // p50 falls in the 100us bucket; clamped to min it is exact.
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 100e-6);
  // p99 falls in the 10ms bucket; ~2x bucket resolution.
  EXPECT_GT(h.Percentile(0.99), 5e-3);
  EXPECT_LT(h.Percentile(0.99), 20e-3);
  EXPECT_EQ(h.count(), 100u);
}

TEST(HistogramTest, SubMillisecondPercentilesResolveDistinctTails) {
  // Regression: with whole-octave buckets, 600us and 900us land in the same
  // bucket and a 90/10 mix reported p50 == p99 (the serving bench's
  // sub-millisecond rows all collapsed to one value). Quarter-octave
  // buckets plus intra-bucket interpolation must keep the tail distinct
  // and place each percentile within ~19% of the true sample.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(600e-6);
  for (int i = 0; i < 10; ++i) h.Record(900e-6);
  const double p50 = h.Percentile(0.50);
  const double p99 = h.Percentile(0.99);
  EXPECT_LT(p50 * 1.2, p99) << "p50=" << p50 << " p99=" << p99;
  EXPECT_GT(p50, 500e-6);
  EXPECT_LT(p50, 720e-6);
  EXPECT_GT(p99, 750e-6);
  EXPECT_LE(p99, 900e-6);  // clamped to the recorded max
}

TEST(HistogramTest, InterpolationIsMonotoneAcrossQuantiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i) * 1e-6);
  double previous = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.Percentile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    // Quarter-octave buckets: within ~19% + interpolation error of truth.
    const double truth = q * 1000e-6;
    EXPECT_GT(value, truth * 0.8) << "q=" << q;
    EXPECT_LT(value, truth * 1.25) << "q=" << q;
    previous = value;
  }
}

TEST(HistogramTest, ConcurrentRecordsAreExact) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(0.001);
    });
  }
  for (auto& t : threads) t.join();
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(h.count(), kTotal);
  // Every add applies the same increment, so the CAS-summed total equals
  // the sequential sum bit for bit.
  double expected_sum = 0.0;
  for (std::uint64_t i = 0; i < kTotal; ++i) expected_sum += 0.001;
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.001);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.001);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  h.Record(3.0);  // usable again
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.0);
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

TEST(RegistryTest, CreateOnFirstUseReturnsStablePointers) {
  Registry reg;
  Counter* a = reg.GetCounter("a");
  EXPECT_EQ(reg.GetCounter("a"), a);
  EXPECT_NE(reg.GetCounter("b"), a);
  Gauge* g = reg.GetGauge("a");  // same name, different kind: distinct
  EXPECT_EQ(reg.GetGauge("a"), g);
  Histogram* h = reg.GetHistogram("a");
  EXPECT_EQ(reg.GetHistogram("a"), h);
}

TEST(RegistryTest, NextScopeIdAllocatesUniquePerBase) {
  Registry reg;
  EXPECT_EQ(reg.NextScopeId("serve.engine"), "serve.engine0.");
  EXPECT_EQ(reg.NextScopeId("serve.engine"), "serve.engine1.");
  EXPECT_EQ(reg.NextScopeId("serve.cache"), "serve.cache0.");
}

TEST(RegistryTest, NamesAreSortedAndComplete) {
  Registry reg;
  reg.GetCounter("z");
  reg.GetCounter("a");
  reg.GetGauge("g");
  reg.GetHistogram("h");
  EXPECT_EQ(reg.CounterNames(), (std::vector<std::string>{"a", "z"}));
  EXPECT_EQ(reg.GaugeNames(), (std::vector<std::string>{"g"}));
  EXPECT_EQ(reg.HistogramNames(), (std::vector<std::string>{"h"}));
}

TEST(RegistryTest, ConcurrentMutationIsExact) {
  // Threads race both instrument creation (first use of a shared name) and
  // recording; totals must come out exact.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string own = "thread." + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        reg.GetCounter("shared")->Increment();
        reg.GetCounter(own)->Increment();
        reg.GetHistogram("shared.hist")->Record(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared")->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("thread." + std::to_string(t))->value(),
              static_cast<std::uint64_t>(kPerThread));
  }
  EXPECT_EQ(reg.GetHistogram("shared.hist")->count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, ResetAllKeepsInstrumentsRegistered) {
  Registry reg;
  Counter* c = reg.GetCounter("c");
  c->Increment(7);
  reg.GetGauge("g")->Set(1.5);
  reg.GetHistogram("h")->Record(2.0);
  reg.ResetAllForTest();
  EXPECT_EQ(reg.GetCounter("c"), c);  // pointer survives
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(reg.GetGauge("g")->value(), 0.0);
  EXPECT_EQ(reg.GetHistogram("h")->count(), 0u);
  EXPECT_EQ(reg.CounterNames(), (std::vector<std::string>{"c"}));
}

TEST(RegistryTest, GlobalIsASingleton) {
  Registry& a = Registry::Global();
  Registry& b = Registry::Global();
  EXPECT_EQ(&a, &b);
  // The low-level subsystems auto-register into it; just confirm creating
  // an instrument works without touching their counts.
  Counter* c = a.GetCounter("obs_test.global_probe");
  c->Increment();
  EXPECT_GE(c->value(), 1u);
}

// --------------------------------------------------------------------------
// Spans
// --------------------------------------------------------------------------

TEST(SpanTest, RecordsIntoSinkOnDestruction) {
  Histogram h;
  {
    ScopedSpan span(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.0);
}

TEST(SpanTest, StopIsIdempotentAndReturnsElapsed) {
  Histogram h;
  ScopedSpan span(&h);
  const double first = span.Stop();
  EXPECT_GE(first, 0.0);
  EXPECT_DOUBLE_EQ(span.Stop(), first);  // second Stop: no-op, same value
  EXPECT_EQ(h.count(), 1u);              // destructor must not re-record
}

TEST(SpanTest, DepthTracksNesting) {
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  {
    ScopedSpan outer(static_cast<Histogram*>(nullptr));
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    {
      ScopedSpan inner(static_cast<Histogram*>(nullptr));
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 2);
      inner.Stop();
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    }
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
}

TEST(SpanTest, NameBasedSpanUsesConventionalHistogram) {
  EXPECT_EQ(SpanHistogramName("train.epoch"), "span.train.epoch.seconds");
  Registry reg;
  {
    ScopedSpan span(&reg, "unit.test");
  }
  EXPECT_EQ(reg.GetHistogram("span.unit.test.seconds")->count(), 1u);
}

// --------------------------------------------------------------------------
// Exporters (golden snapshots; formatting is deterministic by design)
// --------------------------------------------------------------------------

Registry* GoldenRegistry() {
  // Static so the three golden tests share one instance; values are only
  // written here, once. The serve.modelmanager.* instruments mirror what a
  // ModelManager registers (src/serve/model_manager.h) so the exporters'
  // rendering of the model-lifecycle metrics is pinned here.
  static Registry* reg = [] {
    auto* r = new Registry();
    r->GetCounter("a.count")->Increment(5);
    r->GetGauge("b.gauge")->Set(2.5);
    r->GetHistogram("c.hist")->Record(0.001);
    r->GetCounter("serve.modelmanager.publishes")->Increment(3);
    r->GetCounter("serve.modelmanager.rollbacks")->Increment(1);
    r->GetGauge("serve.modelmanager.active_versions")->Set(4);
    r->GetHistogram("serve.modelmanager.artifact_open.seconds")->Record(0.001);
    return r;
  }();
  return reg;
}

TEST(ExporterTest, TextGolden) {
  EXPECT_EQ(GoldenRegistry()->ExportText(),
            "counter a.count 5\n"
            "counter serve.modelmanager.publishes 3\n"
            "counter serve.modelmanager.rollbacks 1\n"
            "gauge b.gauge 2.5\n"
            "gauge serve.modelmanager.active_versions 4\n"
            "histogram c.hist count=1 mean=0.001 p50=0.001 p90=0.001 "
            "p99=0.001 max=0.001\n"
            "histogram serve.modelmanager.artifact_open.seconds count=1 "
            "mean=0.001 p50=0.001 p90=0.001 p99=0.001 max=0.001\n");
}

TEST(ExporterTest, PrometheusGolden) {
  EXPECT_EQ(GoldenRegistry()->ExportPrometheus(),
            "# HELP smgcn_a_count Instrument 'a.count'.\n"
            "# TYPE smgcn_a_count counter\n"
            "smgcn_a_count 5\n"
            "# HELP smgcn_serve_modelmanager_publishes Model versions "
            "published.\n"
            "# TYPE smgcn_serve_modelmanager_publishes counter\n"
            "smgcn_serve_modelmanager_publishes 3\n"
            "# HELP smgcn_serve_modelmanager_rollbacks Model version "
            "rollbacks.\n"
            "# TYPE smgcn_serve_modelmanager_rollbacks counter\n"
            "smgcn_serve_modelmanager_rollbacks 1\n"
            "# HELP smgcn_b_gauge Instrument 'b.gauge'.\n"
            "# TYPE smgcn_b_gauge gauge\n"
            "smgcn_b_gauge 2.5\n"
            "# HELP smgcn_serve_modelmanager_active_versions Model versions "
            "currently resident.\n"
            "# TYPE smgcn_serve_modelmanager_active_versions gauge\n"
            "smgcn_serve_modelmanager_active_versions 4\n"
            "# HELP smgcn_c_hist Instrument 'c.hist'.\n"
            "# TYPE smgcn_c_hist summary\n"
            "smgcn_c_hist{quantile=\"0.5\"} 0.001\n"
            "smgcn_c_hist{quantile=\"0.9\"} 0.001\n"
            "smgcn_c_hist{quantile=\"0.99\"} 0.001\n"
            "smgcn_c_hist_sum 0.001\n"
            "smgcn_c_hist_count 1\n"
            "# HELP smgcn_serve_modelmanager_artifact_open_seconds Instrument "
            "'serve.modelmanager.artifact_open.seconds'.\n"
            "# TYPE smgcn_serve_modelmanager_artifact_open_seconds summary\n"
            "smgcn_serve_modelmanager_artifact_open_seconds{quantile=\"0.5\"} "
            "0.001\n"
            "smgcn_serve_modelmanager_artifact_open_seconds{quantile=\"0.9\"} "
            "0.001\n"
            "smgcn_serve_modelmanager_artifact_open_seconds{quantile=\"0.99\"} "
            "0.001\n"
            "smgcn_serve_modelmanager_artifact_open_seconds_sum 0.001\n"
            "smgcn_serve_modelmanager_artifact_open_seconds_count 1\n");
}

TEST(ExporterTest, CsvGolden) {
  EXPECT_EQ(GoldenRegistry()->ExportCsv(),
            "metric,type,value,count,mean,p50,p90,p99,max\n"
            "a.count,counter,5,,,,,,\n"
            "serve.modelmanager.publishes,counter,3,,,,,,\n"
            "serve.modelmanager.rollbacks,counter,1,,,,,,\n"
            "b.gauge,gauge,2.5,,,,,,\n"
            "serve.modelmanager.active_versions,gauge,4,,,,,,\n"
            "c.hist,histogram,0.001,1,0.001,0.001,0.001,0.001,0.001\n"
            "serve.modelmanager.artifact_open.seconds,histogram,0.001,1,"
            "0.001,0.001,0.001,0.001,0.001\n");
}

TEST(ExporterTest, EmptyRegistryExportsHeaderOnly) {
  Registry reg;
  EXPECT_EQ(reg.ExportText(), "");
  EXPECT_EQ(reg.ExportPrometheus(), "");
  EXPECT_EQ(reg.ExportCsv(), "metric,type,value,count,mean,p50,p90,p99,max\n");
}

TEST(ExporterTest, CsvEscapesMetricNamesWithSpecials) {
  // Instrument names flow in from callers (model names, scopes), so CSV
  // specials do reach the exporter. A comma used to split the name across
  // two columns and an embedded quote corrupted the row; both must come
  // out RFC-4180 quoted, with quotes doubled.
  Registry reg;
  reg.GetCounter("model \"prod\",eu.publishes")->Increment(7);
  reg.GetGauge("line\nbreak.gauge")->Set(1);
  EXPECT_EQ(reg.ExportCsv(),
            "metric,type,value,count,mean,p50,p90,p99,max\n"
            "\"model \"\"prod\"\",eu.publishes\",counter,7,,,,,,\n"
            "\"line\nbreak.gauge\",gauge,1,,,,,,\n");
}

}  // namespace
}  // namespace obs
}  // namespace smgcn
