// Tests for the binary model-artifact format (src/core/artifact.h):
// save/open round trips, the text-checkpoint converter, and the validation
// paths — every class of corruption must fail Open() with a message naming
// what is damaged, never yield a silently wrong model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "src/core/artifact.h"
#include "src/core/checkpoint.h"
#include "src/tensor/matrix.h"
#include "src/util/random.h"

namespace smgcn {
namespace core {
namespace {

using tensor::Matrix;

InferenceCheckpoint MakeCheckpoint(bool with_si_mlp = true,
                                   std::size_t num_symptoms = 12,
                                   std::size_t num_herbs = 20,
                                   std::size_t dim = 6) {
  Rng rng(4242);
  InferenceCheckpoint ckpt;
  ckpt.model_name = "artifact-test-model";
  ckpt.symptom_embeddings =
      Matrix::RandomNormal(num_symptoms, dim, 0.0, 1.0, &rng);
  ckpt.herb_embeddings = Matrix::RandomNormal(num_herbs, dim, 0.0, 1.0, &rng);
  ckpt.has_si_mlp = with_si_mlp;
  if (with_si_mlp) {
    ckpt.si_weight = Matrix::RandomNormal(dim, dim, 0.0, 0.5, &rng);
    ckpt.si_bias = Matrix::RandomNormal(1, dim, 0.0, 0.5, &rng);
  }
  return ckpt;
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good());
  return std::string(std::istreambuf_iterator<char>(file),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good());
}

bool ViewEqualsMatrix(const MappedArtifact::SectionView& view,
                      const Matrix& m) {
  return view.rows == m.rows() && view.cols == m.cols() &&
         std::memcmp(view.data, m.data(),
                     m.size() * sizeof(double)) == 0;
}

// --------------------------------------------------------------------------
// Round trips
// --------------------------------------------------------------------------

TEST(ArtifactTest, SaveOpenRoundTripIsBitExact) {
  for (const bool with_si : {false, true}) {
    const InferenceCheckpoint original = MakeCheckpoint(with_si);
    const std::string path = testing::TempDir() + "/smgcn_roundtrip.smga";
    ASSERT_TRUE(SaveArtifact(original, "v3", path).ok());

    auto artifact = MappedArtifact::Open(path);
    ASSERT_TRUE(artifact.ok()) << artifact.status();
    EXPECT_EQ(artifact->model_name(), "artifact-test-model");
    EXPECT_EQ(artifact->model_version(), "v3");
    EXPECT_EQ(artifact->format_version(), kArtifactFormatVersion);
    EXPECT_EQ(artifact->has_si_mlp(), with_si);

    EXPECT_TRUE(ViewEqualsMatrix(artifact->symptom_embeddings(),
                                 original.symptom_embeddings));
    EXPECT_TRUE(
        ViewEqualsMatrix(artifact->herb_embeddings(), original.herb_embeddings));
    if (with_si) {
      EXPECT_TRUE(ViewEqualsMatrix(artifact->si_weight(), original.si_weight));
      EXPECT_TRUE(ViewEqualsMatrix(artifact->si_bias(), original.si_bias));
    } else {
      EXPECT_EQ(artifact->si_weight().data, nullptr);
      EXPECT_EQ(artifact->si_bias().data, nullptr);
    }

    // Payload offsets are 64-byte aligned from file start, so under mmap
    // (page-aligned base) the section pointers are 64-byte aligned too.
    if (artifact->memory_mapped()) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(
                    artifact->symptom_embeddings().data) %
                    64,
                0u);
      EXPECT_EQ(
          reinterpret_cast<std::uintptr_t>(artifact->herb_embeddings().data) %
              64,
          0u);
    }
  }
}

TEST(ArtifactTest, ToCheckpointRestoresEverything) {
  const InferenceCheckpoint original = MakeCheckpoint(true);
  const std::string path = testing::TempDir() + "/smgcn_tockpt.smga";
  ASSERT_TRUE(SaveArtifact(original, "2026-08-08-a", path).ok());
  auto artifact = MappedArtifact::Open(path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  auto restored = artifact->ToCheckpoint();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->model_name, original.model_name);
  EXPECT_EQ(restored->has_si_mlp, original.has_si_mlp);
  EXPECT_EQ(restored->symptom_embeddings, original.symptom_embeddings);
  EXPECT_EQ(restored->herb_embeddings, original.herb_embeddings);
  EXPECT_EQ(restored->si_weight, original.si_weight);
  EXPECT_EQ(restored->si_bias, original.si_bias);
}

TEST(ArtifactTest, ConverterMatchesTextCheckpoint) {
  const InferenceCheckpoint original = MakeCheckpoint(true);
  const std::string text_path = testing::TempDir() + "/smgcn_convert.ckpt";
  const std::string artifact_path = testing::TempDir() + "/smgcn_convert.smga";
  ASSERT_TRUE(SaveInferenceCheckpoint(original, text_path).ok());
  ASSERT_TRUE(
      ConvertCheckpointToArtifact(text_path, "v9", artifact_path).ok());

  auto artifact = MappedArtifact::Open(artifact_path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->model_version(), "v9");
  auto restored = artifact->ToCheckpoint();
  ASSERT_TRUE(restored.ok());
  // The text format stores %.17g which round-trips doubles exactly, so the
  // artifact built from the text file is bit-identical to the original.
  EXPECT_EQ(restored->symptom_embeddings, original.symptom_embeddings);
  EXPECT_EQ(restored->herb_embeddings, original.herb_embeddings);
}

TEST(ArtifactTest, Float32RoundTripNarrowsOnceAndWidensExactly) {
  const InferenceCheckpoint original = MakeCheckpoint(true);
  const std::string f64_path = testing::TempDir() + "/smgcn_rt_f64.smga";
  const std::string f32_path = testing::TempDir() + "/smgcn_rt_f32.smga";
  ASSERT_TRUE(SaveArtifact(original, "v5", f64_path).ok());
  ASSERT_TRUE(
      SaveArtifact(original, "v5", f32_path, tensor::Precision::kFloat32).ok());

  auto artifact = MappedArtifact::Open(f32_path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->precision(), tensor::Precision::kFloat32);
  EXPECT_TRUE(artifact->has_si_mlp());
  // f32 sections expose the float pointer; the double pointer stays null.
  EXPECT_EQ(artifact->symptom_embeddings().data, nullptr);
  ASSERT_NE(artifact->symptom_embeddings().data_f32, nullptr);

  // Half-size payloads: the f32 file is strictly smaller than its f64 twin.
  EXPECT_LT(artifact->file_bytes(),
            MappedArtifact::Open(f64_path)->file_bytes());

  auto restored = artifact->ToCheckpoint();
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->model_name, original.model_name);
  ASSERT_EQ(restored->symptom_embeddings.rows(),
            original.symptom_embeddings.rows());
  // Exactly one rounding step: each restored double is the round-to-nearest
  // float of the original, widened exactly — never double-rounded.
  const auto expect_narrowed_once = [](const Matrix& got, const Matrix& want) {
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.data()[i],
                static_cast<double>(static_cast<float>(want.data()[i])));
    }
  };
  expect_narrowed_once(restored->symptom_embeddings,
                       original.symptom_embeddings);
  expect_narrowed_once(restored->herb_embeddings, original.herb_embeddings);
  expect_narrowed_once(restored->si_weight, original.si_weight);
  expect_narrowed_once(restored->si_bias, original.si_bias);
}

TEST(ArtifactTest, Float32ConverterMatchesInMemoryNarrowing) {
  const InferenceCheckpoint original = MakeCheckpoint(true);
  const std::string text_path = testing::TempDir() + "/smgcn_cvt32.ckpt";
  const std::string artifact_path = testing::TempDir() + "/smgcn_cvt32.smga";
  ASSERT_TRUE(SaveInferenceCheckpoint(original, text_path).ok());
  ASSERT_TRUE(ConvertCheckpointToArtifact(text_path, "v9", artifact_path,
                                          tensor::Precision::kFloat32)
                  .ok());
  auto artifact = MappedArtifact::Open(artifact_path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->precision(), tensor::Precision::kFloat32);
  const MappedArtifact::SectionView view = artifact->herb_embeddings();
  ASSERT_NE(view.data_f32, nullptr);
  for (std::size_t i = 0; i < original.herb_embeddings.size(); ++i) {
    EXPECT_EQ(view.data_f32[i],
              static_cast<float>(original.herb_embeddings.data()[i]));
  }
}

TEST(ArtifactTest, Int8RoundTripServesStoredIntegersAndResavesBitExact) {
  const InferenceCheckpoint original = MakeCheckpoint(true);
  const std::string f32_path = testing::TempDir() + "/smgcn_rt8_f32.smga";
  const std::string s8_path = testing::TempDir() + "/smgcn_rt8_s8.smga";
  ASSERT_TRUE(
      SaveArtifact(original, "v8", f32_path, tensor::Precision::kFloat32).ok());
  ASSERT_TRUE(
      SaveArtifact(original, "v8", s8_path, tensor::Precision::kInt8).ok());

  auto artifact = MappedArtifact::Open(s8_path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->precision(), tensor::Precision::kInt8);
  EXPECT_EQ(artifact->format_version(), kArtifactFormatVersion);

  // int8 sections expose the quantized pointer plus a per-row scale vector;
  // the float pointers stay null.
  const MappedArtifact::SectionView herbs = artifact->herb_embeddings();
  EXPECT_EQ(herbs.data, nullptr);
  EXPECT_EQ(herbs.data_f32, nullptr);
  ASSERT_NE(herbs.data_s8, nullptr);
  ASSERT_NE(herbs.scales, nullptr);
  EXPECT_EQ(herbs.payload_bytes, herbs.rows * herbs.cols);
  EXPECT_EQ(herbs.scale_bytes, herbs.rows * sizeof(float));
  // Per-row symmetric quantization puts each row's absmax element at ±127.
  for (std::size_t i = 0; i < herbs.rows; ++i) {
    std::int8_t row_absmax = 0;
    for (std::size_t c = 0; c < herbs.cols; ++c) {
      const std::int8_t q = herbs.data_s8[i * herbs.cols + c];
      row_absmax = std::max(row_absmax,
                            static_cast<std::int8_t>(q < 0 ? -q : q));
    }
    EXPECT_EQ(row_absmax, 127) << "row " << i;
    EXPECT_GT(herbs.scales[i], 0.0f);
  }

  // ~1/8 payload: strictly smaller than the f32 twin of the same model.
  EXPECT_LT(artifact->file_bytes(),
            MappedArtifact::Open(f32_path)->file_bytes());

  // ToCheckpoint dequantizes losslessly w.r.t. the stored integers: saving
  // the restored checkpoint at int8 again reproduces the file bit for bit.
  auto restored = artifact->ToCheckpoint();
  ASSERT_TRUE(restored.ok()) << restored.status();
  const std::string resaved_path = testing::TempDir() + "/smgcn_rt8_again.smga";
  ASSERT_TRUE(SaveArtifact(*restored, "v8", resaved_path,
                           tensor::Precision::kInt8)
                  .ok());
  EXPECT_EQ(ReadFile(s8_path), ReadFile(resaved_path));
}

TEST(ArtifactTest, Int8ConverterMatchesInMemoryQuantization) {
  const InferenceCheckpoint original = MakeCheckpoint(true);
  const std::string text_path = testing::TempDir() + "/smgcn_cvt8.ckpt";
  const std::string converted_path = testing::TempDir() + "/smgcn_cvt8.smga";
  const std::string direct_path = testing::TempDir() + "/smgcn_direct8.smga";
  ASSERT_TRUE(SaveInferenceCheckpoint(original, text_path).ok());
  ASSERT_TRUE(ConvertCheckpointToArtifact(text_path, "v9", converted_path,
                                          tensor::Precision::kInt8)
                  .ok());
  ASSERT_TRUE(
      SaveArtifact(original, "v9", direct_path, tensor::Precision::kInt8).ok());
  // The text checkpoint round-trips doubles exactly, so converting it must
  // quantize to the same bytes as quantizing the in-memory checkpoint.
  EXPECT_EQ(ReadFile(converted_path), ReadFile(direct_path));
  auto artifact = MappedArtifact::Open(converted_path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_EQ(artifact->precision(), tensor::Precision::kInt8);
}

TEST(ArtifactTest, HerbBiparSectionRoundTripsAtEveryPrecision) {
  Rng rng(77);
  InferenceCheckpoint original = MakeCheckpoint(true);
  original.has_herb_bipar = true;
  original.herb_bipar =
      Matrix::RandomNormal(original.herb_embeddings.rows(),
                           original.herb_embeddings.cols(), 0.0, 0.5, &rng);
  ASSERT_TRUE(original.Validate().ok());

  for (const tensor::Precision precision :
       {tensor::Precision::kFloat64, tensor::Precision::kFloat32,
        tensor::Precision::kInt8}) {
    const std::string path = testing::TempDir() + "/smgcn_bipar.smga";
    ASSERT_TRUE(SaveArtifact(original, "v4", path, precision).ok());
    auto artifact = MappedArtifact::Open(path);
    ASSERT_TRUE(artifact.ok()) << artifact.status();
    EXPECT_EQ(artifact->format_version(), kArtifactFormatVersion);
    EXPECT_TRUE(artifact->has_herb_bipar());
    const MappedArtifact::SectionView bipar = artifact->herb_bipar();
    EXPECT_EQ(bipar.rows, original.herb_bipar.rows());
    EXPECT_EQ(bipar.cols, original.herb_bipar.cols());

    auto restored = artifact->ToCheckpoint();
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_TRUE(restored->has_herb_bipar);
    ASSERT_EQ(restored->herb_bipar.rows(), original.herb_bipar.rows());
    if (precision == tensor::Precision::kFloat64) {
      // Bit-exact at f64.
      EXPECT_EQ(restored->herb_bipar, original.herb_bipar);
      EXPECT_TRUE(ViewEqualsMatrix(bipar, original.herb_bipar));
    } else if (precision == tensor::Precision::kFloat32) {
      for (std::size_t i = 0; i < original.herb_bipar.size(); ++i) {
        EXPECT_EQ(restored->herb_bipar.data()[i],
                  static_cast<double>(static_cast<float>(
                      original.herb_bipar.data()[i])));
      }
    } else {
      // int8: resaving the dequantized checkpoint reproduces the file.
      const std::string again = testing::TempDir() + "/smgcn_bipar2.smga";
      ASSERT_TRUE(SaveArtifact(*restored, "v4", again, precision).ok());
      EXPECT_EQ(ReadFile(path), ReadFile(again));
    }
  }
}

TEST(ArtifactTest, WithoutHerbBiparSectionViewIsEmpty) {
  const std::string path = testing::TempDir() + "/smgcn_nobipar.smga";
  ASSERT_TRUE(SaveArtifact(MakeCheckpoint(true), "v1", path).ok());
  auto artifact = MappedArtifact::Open(path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();
  EXPECT_FALSE(artifact->has_herb_bipar());
  EXPECT_EQ(artifact->herb_bipar().data, nullptr);
  auto restored = artifact->ToCheckpoint();
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->has_herb_bipar);
}

TEST(ArtifactTest, HerbBiparConverterMatchesDirectSave) {
  Rng rng(78);
  InferenceCheckpoint original = MakeCheckpoint(true);
  original.has_herb_bipar = true;
  original.herb_bipar =
      Matrix::RandomNormal(original.herb_embeddings.rows(),
                           original.herb_embeddings.cols(), 0.0, 0.5, &rng);
  const std::string text_path = testing::TempDir() + "/smgcn_biparcvt.ckpt";
  const std::string converted = testing::TempDir() + "/smgcn_biparcvt.smga";
  const std::string direct = testing::TempDir() + "/smgcn_bipardirect.smga";
  ASSERT_TRUE(SaveInferenceCheckpoint(original, text_path).ok());
  ASSERT_TRUE(ConvertCheckpointToArtifact(text_path, "v4", converted).ok());
  ASSERT_TRUE(SaveArtifact(original, "v4", direct).ok());
  EXPECT_EQ(ReadFile(converted), ReadFile(direct));
}

TEST(ArtifactTest, SaveRejectsInvalidInput) {
  EXPECT_FALSE(SaveArtifact(InferenceCheckpoint{}, "v1",
                            testing::TempDir() + "/smgcn_bad.smga")
                   .ok());
  EXPECT_EQ(SaveArtifact(MakeCheckpoint(), "",
                         testing::TempDir() + "/smgcn_bad.smga")
                .code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Corruption detection
// --------------------------------------------------------------------------

class ArtifactCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/smgcn_corrupt.smga";
    ASSERT_TRUE(SaveArtifact(MakeCheckpoint(true), "v1", path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), 256u);
  }

  Status OpenPatched(const std::string& bytes) {
    WriteFile(path_, bytes);
    return MappedArtifact::Open(path_).status();
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(ArtifactCorruptionTest, FlippedPayloadByteNamesTheSection) {
  // Flip one bit inside the final (SI bias) payload. The section is 1 x 6
  // doubles = 48 bytes, 64-byte aligned at the end of the file, so it
  // occupies [size-64, size-16) with the remainder being padding.
  std::string bad = bytes_;
  const std::size_t target = bad.size() - 20;
  bad[target] = static_cast<char>(bad[target] ^ 0x01);
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("si_bias"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST_F(ArtifactCorruptionTest, TruncationIsRejected) {
  const Status status = OpenPatched(bytes_.substr(0, bytes_.size() / 2));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("truncated"), std::string::npos)
      << status.message();
  // Shorter than the fixed header.
  EXPECT_EQ(OpenPatched(bytes_.substr(0, 10)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ArtifactCorruptionTest, BadMagicIsRejected) {
  std::string bad = bytes_;
  bad[0] = 'X';
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST_F(ArtifactCorruptionTest, NewerFormatVersionIsRejected) {
  std::string bad = bytes_;
  const std::uint32_t future = kArtifactFormatVersion + 1;
  std::memcpy(bad.data() + 8, &future, sizeof(future));
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("newer toolchain"), std::string::npos)
      << status.message();
}

TEST_F(ArtifactCorruptionTest, OlderFormatVersionNamesTheConverter) {
  std::string bad = bytes_;
  const std::uint32_t ancient = 0;
  std::memcpy(bad.data() + 8, &ancient, sizeof(ancient));
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("converter"), std::string::npos)
      << status.message();
}

TEST_F(ArtifactCorruptionTest, CorruptedModelNameFailsHeaderChecksum) {
  std::string bad = bytes_;
  bad[64] = static_cast<char>(bad[64] ^ 0x40);  // first model-name byte
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("header checksum"), std::string::npos)
      << status.message();
}

// The fixture's model name is 19 bytes and the version 2, so the section
// table starts at AlignUp(64 + 19 + 2) = 128; each SectionHeader is 64
// bytes with the dtype word at offset 4. The table is not covered by the
// header checksum (only payloads are), so dtype corruption must be caught
// by validation, not by a checksum mismatch.
constexpr std::size_t kFixtureTableOffset = 128;

TEST_F(ArtifactCorruptionTest, UnknownSectionDtypeIsRejected) {
  std::string bad = bytes_;
  const std::uint32_t bogus = 7;
  std::memcpy(bad.data() + kFixtureTableOffset + 4, &bogus, sizeof(bogus));
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unknown dtype"), std::string::npos)
      << status.message();
}

TEST_F(ArtifactCorruptionTest, MixedSectionDtypesAreRejected) {
  // Flip only the second section (herb embeddings) to f32 in an otherwise
  // f64 file: one artifact, one dtype.
  std::string bad = bytes_;
  const std::uint32_t f32 = 1;
  std::memcpy(bad.data() + kFixtureTableOffset + 64 + 4, &f32, sizeof(f32));
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("share one dtype"), std::string::npos)
      << status.message();
}

TEST_F(ArtifactCorruptionTest, FloatSectionWithScaleFieldsIsRejected) {
  // A v3 float section must keep the scale words zero (they were padding in
  // v2); a nonzero value means a corrupted or mis-writing producer.
  std::string bad = bytes_;
  const std::uint64_t bogus_offset = 192;
  std::memcpy(bad.data() + kFixtureTableOffset + 48, &bogus_offset,
              sizeof(bogus_offset));
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("not int8 but carries scale fields"),
            std::string::npos)
      << status.message();
}

TEST_F(ArtifactCorruptionTest, Int8AmongFloatSectionsIsRejected) {
  // Same one-dtype rule as f64/f32 mixing: flip the second section to int8.
  std::string bad = bytes_;
  const std::uint32_t s8 = 2;
  std::memcpy(bad.data() + kFixtureTableOffset + 64 + 4, &s8, sizeof(s8));
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("share one dtype"), std::string::npos)
      << status.message();
}

TEST_F(ArtifactCorruptionTest, EmptyAndMissingFiles) {
  EXPECT_EQ(OpenPatched(std::string()).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(MappedArtifact::Open("/no/such/artifact").status().code(),
            StatusCode::kIoError);
}

// --------------------------------------------------------------------------
// int8 corruption detection: the scale vector is part of the section's
// integrity domain — damage to it must fail Open() just like payload damage.
// --------------------------------------------------------------------------

class Int8ArtifactCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/smgcn_corrupt8.smga";
    ASSERT_TRUE(SaveArtifact(MakeCheckpoint(true), "v1", path_,
                             tensor::Precision::kInt8)
                    .ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), 256u);
  }

  Status OpenPatched(const std::string& bytes) {
    WriteFile(path_, bytes);
    return MappedArtifact::Open(path_).status();
  }

  // Reads a section-header word; same fixture geometry as the f64 fixture
  // (19-byte model name + 2-byte version -> table at 128).
  std::uint64_t HeaderWord(std::size_t section, std::size_t offset) const {
    std::uint64_t value = 0;
    std::memcpy(&value,
                bytes_.data() + kFixtureTableOffset + section * 64 + offset,
                sizeof(value));
    return value;
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(Int8ArtifactCorruptionTest, ScaleVectorCorruptionNamesTheSection) {
  const std::uint64_t scale_offset = HeaderWord(0, 48);
  const std::uint64_t scale_bytes = HeaderWord(0, 56);
  ASSERT_GT(scale_bytes, 0u);
  ASSERT_LE(scale_offset + scale_bytes, bytes_.size());
  std::string bad = bytes_;
  bad[scale_offset] = static_cast<char>(bad[scale_offset] ^ 0x01);
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("symptom_embeddings"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.message();
}

TEST_F(Int8ArtifactCorruptionTest, QuantizedPayloadCorruptionIsDetected) {
  const std::uint64_t offset = HeaderWord(0, 24);
  std::string bad = bytes_;
  bad[offset] = static_cast<char>(bad[offset] ^ 0x01);
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.message();
}

TEST_F(Int8ArtifactCorruptionTest, WrongScaleVectorSizeIsRejected) {
  std::string bad = bytes_;
  const std::uint64_t wrong = HeaderWord(0, 56) + 4;  // one extra row's worth
  std::memcpy(bad.data() + kFixtureTableOffset + 56, &wrong, sizeof(wrong));
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("scale vector"), std::string::npos)
      << status.message();
}

TEST_F(Int8ArtifactCorruptionTest, MisalignedScaleOffsetIsRejected) {
  std::string bad = bytes_;
  const std::uint64_t wrong = HeaderWord(0, 48) + 1;
  std::memcpy(bad.data() + kFixtureTableOffset + 48, &wrong, sizeof(wrong));
  const Status status = OpenPatched(bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("aligned"), std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace core
}  // namespace smgcn
