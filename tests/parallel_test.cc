// Tests for smgcn::parallel and the determinism contract of the kernels
// built on it: sequential (1 thread) and parallel (2, 7, hardware) runs of
// every routed kernel must produce bit-identical outputs, because the
// partition is over output rows and each row runs the same sequential
// inner loop regardless of thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/graph/csr_matrix.h"
#include "src/tensor/matrix.h"
#include "src/util/parallel.h"
#include "src/util/random.h"

namespace smgcn {
namespace {

using graph::CsrMatrix;
using graph::Triplet;
using tensor::Matrix;

// Restores a known worker count even when a test fails mid-way, so later
// tests (and other suites in this binary) start from one thread.
class ParallelTest : public testing::Test {
 protected:
  void TearDown() override { parallel::SetNumThreads(1); }
};

TEST_F(ParallelTest, SetAndGetNumThreads) {
  parallel::SetNumThreads(3);
  EXPECT_EQ(parallel::GetNumThreads(), 3u);
  parallel::SetNumThreads(1);
  EXPECT_EQ(parallel::GetNumThreads(), 1u);
  parallel::SetNumThreads(0);  // 0 = hardware
  EXPECT_EQ(parallel::GetNumThreads(), parallel::HardwareThreads());
}

TEST_F(ParallelTest, CoversRangeExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::SetNumThreads(threads);
    std::vector<std::atomic<int>> hits(1001);
    parallel::ParallelFor(3, hits.size(), 1,
                          [&hits](std::size_t b, std::size_t e) {
                            for (std::size_t i = b; i < e; ++i) {
                              hits[i].fetch_add(1);
                            }
                          });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), i < 3 ? 0 : 1) << "index " << i;
    }
  }
}

TEST_F(ParallelTest, EmptyRangeIsNoop) {
  parallel::SetNumThreads(4);
  parallel::ParallelFor(5, 5, 1, [](std::size_t, std::size_t) {
    FAIL() << "must not run";
  });
}

TEST_F(ParallelTest, GrainLowerBoundsChunkSize) {
  parallel::SetNumThreads(4);
  std::atomic<int> undersized{0};
  constexpr std::size_t kGrain = 100;
  constexpr std::size_t kN = 1000;
  parallel::ParallelFor(0, kN, kGrain,
                        [&undersized](std::size_t b, std::size_t e) {
                          // Only the final chunk may carry the remainder.
                          if (e - b < kGrain && e != kN) undersized.fetch_add(1);
                        });
  EXPECT_EQ(undersized.load(), 0);
}

TEST_F(ParallelTest, NestedCallsRunInline) {
  parallel::SetNumThreads(4);
  std::atomic<int> total{0};
  parallel::ParallelFor(0, 8, 1, [&total](std::size_t b, std::size_t e) {
    EXPECT_TRUE(parallel::InParallelRegion());
    for (std::size_t i = b; i < e; ++i) {
      parallel::ParallelFor(0, 10, 1, [&total](std::size_t nb, std::size_t ne) {
        total.fetch_add(static_cast<int>(ne - nb));
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
  EXPECT_FALSE(parallel::InParallelRegion());
}

// --------------------------------------------------------------------------
// Bit-identity properties: sequential vs parallel kernels
// --------------------------------------------------------------------------

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<std::size_t> TestedThreadCounts() {
  return {1, 2, 7, parallel::HardwareThreads()};
}

/// Sparsifies ~30% of entries so the GEMM zero-skip fast path is exercised.
Matrix SparseRandom(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m = Matrix::RandomNormal(rows, cols, 0.0, 1.0, rng);
  m.Apply([rng](double v) { return rng->Uniform(0.0, 1.0) < 0.3 ? 0.0 : v; });
  return m;
}

class KernelDeterminism : public ParallelTest,
                          public testing::WithParamInterface<int> {};

TEST_P(KernelDeterminism, DenseKernelsBitIdenticalAcrossThreadCounts) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = static_cast<std::size_t>(16 + rng.UniformInt(0, 80));
  const std::size_t k = static_cast<std::size_t>(16 + rng.UniformInt(0, 64));
  const std::size_t n = static_cast<std::size_t>(16 + rng.UniformInt(0, 96));
  const Matrix a = SparseRandom(m, k, &rng);
  const Matrix b = SparseRandom(k, n, &rng);
  const Matrix c = SparseRandom(m, n, &rng);   // for this^T * other
  const Matrix bt = SparseRandom(n, k, &rng);  // for this * other^T

  parallel::SetNumThreads(1);
  const Matrix matmul_ref = a.MatMul(b);
  const Matrix tmm_ref = a.TransposedMatMul(c);
  const Matrix mmt_ref = a.MatMulTransposed(bt);
  const Matrix transpose_ref = a.Transpose();

  for (std::size_t threads : TestedThreadCounts()) {
    parallel::SetNumThreads(threads);
    EXPECT_TRUE(BitIdentical(a.MatMul(b), matmul_ref)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(a.TransposedMatMul(c), tmm_ref))
        << threads << " threads";
    EXPECT_TRUE(BitIdentical(a.MatMulTransposed(bt), mmt_ref))
        << threads << " threads";
    EXPECT_TRUE(BitIdentical(a.Transpose(), transpose_ref))
        << threads << " threads";
  }
}

TEST_P(KernelDeterminism, ElementwiseKernelsBitIdenticalAcrossThreadCounts) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  // Big enough that the flat-partitioned element-wise kernels actually fan
  // out (their grain is 2^15 entries).
  const Matrix a = Matrix::RandomNormal(260, 300, 0.0, 1.0, &rng);
  const Matrix b = Matrix::RandomNormal(260, 300, 0.0, 1.0, &rng);

  parallel::SetNumThreads(1);
  Matrix add_ref = a;
  add_ref.AddInPlace(b);
  Matrix axpy_ref = a;
  axpy_ref.AddScaled(b, -1.75);
  const Matrix mul_ref = a.Mul(b);
  const Matrix scale_ref = a.Scale(3.25);

  for (std::size_t threads : TestedThreadCounts()) {
    parallel::SetNumThreads(threads);
    Matrix add = a;
    add.AddInPlace(b);
    Matrix axpy = a;
    axpy.AddScaled(b, -1.75);
    EXPECT_TRUE(BitIdentical(add, add_ref)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(axpy, axpy_ref)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(a.Mul(b), mul_ref)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(a.Scale(3.25), scale_ref)) << threads << " threads";
  }
}

TEST_P(KernelDeterminism, SparseKernelsBitIdenticalAcrossThreadCounts) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const std::size_t rows = static_cast<std::size_t>(40 + rng.UniformInt(0, 120));
  const std::size_t cols = static_cast<std::size_t>(40 + rng.UniformInt(0, 120));
  const std::size_t d = static_cast<std::size_t>(8 + rng.UniformInt(0, 56));
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int64_t degree = 1 + rng.UniformInt(0, 6);
    for (std::int64_t e = 0; e < degree; ++e) {
      triplets.push_back({r,
                          static_cast<std::size_t>(
                              rng.UniformInt(0, static_cast<std::int64_t>(cols) - 1)),
                          rng.Uniform(0.1, 2.0)});
    }
  }
  const CsrMatrix adj = CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
  const Matrix x = Matrix::RandomNormal(cols, d, 0.0, 1.0, &rng);
  const Matrix y = Matrix::RandomNormal(rows, d, 0.0, 1.0, &rng);

  parallel::SetNumThreads(1);
  const Matrix spmm_ref = adj.Multiply(x);
  const Matrix spmmt_ref = adj.TransposeMultiply(y);

  for (std::size_t threads : TestedThreadCounts()) {
    parallel::SetNumThreads(threads);
    EXPECT_TRUE(BitIdentical(adj.Multiply(x), spmm_ref)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(adj.TransposeMultiply(y), spmmt_ref))
        << threads << " threads";
  }
}

TEST_P(KernelDeterminism, NonFiniteOperandsStayBitIdentical) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  Matrix a = SparseRandom(48, 40, &rng);
  Matrix b = SparseRandom(40, 56, &rng);
  // Poison B so the zero-skip fast path is disabled and NaN/Inf must flow
  // through identically on every thread count.
  b(3, 7) = std::numeric_limits<double>::quiet_NaN();
  b(11, 0) = std::numeric_limits<double>::infinity();

  const Matrix y = Matrix::RandomNormal(40, 24, 0.0, 1.0, &rng);

  parallel::SetNumThreads(1);
  const Matrix matmul_ref = a.MatMul(b);
  const Matrix tmm_ref = b.TransposedMatMul(y);

  for (std::size_t threads : TestedThreadCounts()) {
    parallel::SetNumThreads(threads);
    const Matrix matmul = a.MatMul(b);
    const Matrix tmm = b.TransposedMatMul(y);
    ASSERT_EQ(matmul.rows(), matmul_ref.rows());
    // NaN != NaN, so compare bits, not values.
    EXPECT_EQ(std::memcmp(matmul.data(), matmul_ref.data(),
                          matmul.size() * sizeof(double)),
              0)
        << threads << " threads";
    EXPECT_EQ(
        std::memcmp(tmm.data(), tmm_ref.data(), tmm.size() * sizeof(double)), 0)
        << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDeterminism,
                         testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace smgcn
