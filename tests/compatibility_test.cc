// Tests for herb compatibility rules, constrained recommendation, and the
// generator's contraindication support.
#include <gtest/gtest.h>

#include "src/core/compatibility.h"
#include "src/core/smgcn_model.h"
#include "src/data/tcm_generator.h"
#include "tests/test_util.h"

namespace smgcn {
namespace core {
namespace {

TEST(CompatibilityRulesTest, AddAndQuery) {
  CompatibilityRules rules;
  ASSERT_TRUE(rules.AddIncompatiblePair(3, 7).ok());
  EXPECT_TRUE(rules.AreIncompatible(3, 7));
  EXPECT_TRUE(rules.AreIncompatible(7, 3));  // unordered
  EXPECT_FALSE(rules.AreIncompatible(3, 8));
  EXPECT_EQ(rules.num_rules(), 1u);
  ASSERT_TRUE(rules.AddIncompatiblePair(7, 3).ok());  // idempotent
  EXPECT_EQ(rules.num_rules(), 1u);
}

TEST(CompatibilityRulesTest, RejectsInvalidPairs) {
  CompatibilityRules rules;
  EXPECT_EQ(rules.AddIncompatiblePair(3, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rules.AddIncompatiblePair(-1, 2).code(), StatusCode::kInvalidArgument);
}

TEST(CompatibilityRulesTest, ViolationDetection) {
  CompatibilityRules rules;
  ASSERT_TRUE(rules.AddIncompatiblePair(1, 2).ok());
  ASSERT_TRUE(rules.AddIncompatiblePair(4, 5).ok());
  EXPECT_FALSE(rules.HasViolation({1, 3, 5}));
  EXPECT_TRUE(rules.HasViolation({1, 2, 3}));
  const auto violations = rules.Violations({1, 2, 4, 5});
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0], std::make_pair(1, 2));
  EXPECT_EQ(violations[1], std::make_pair(4, 5));
  EXPECT_FALSE(rules.HasViolation({}));
}

TEST(CompatibilityRulesTest, FilterRankingKeepsOrderAndDropsConflicts) {
  CompatibilityRules rules;
  ASSERT_TRUE(rules.AddIncompatiblePair(10, 20).ok());
  // 20 conflicts with the already-kept 10 and must be skipped; 30 fills in.
  const std::vector<std::size_t> ranked{10, 20, 30, 40};
  EXPECT_EQ(rules.FilterRanking(ranked, 3),
            (std::vector<std::size_t>{10, 30, 40}));
  EXPECT_EQ(rules.FilterRanking(ranked, 2), (std::vector<std::size_t>{10, 30}));
  // Without rules, the top-k passes through.
  CompatibilityRules empty;
  EXPECT_EQ(empty.FilterRanking(ranked, 2), (std::vector<std::size_t>{10, 20}));
}

TEST(CompatibilityRulesTest, ParseAndSerializeRoundTrip) {
  const data::Vocabulary vocab = data::Vocabulary::Synthetic(5, "herb_");
  auto rules = CompatibilityRules::Parse(
      "# comment\n"
      "herb_0 herb_3\n"
      "\n"
      "herb_2 herb_4\n",
      vocab);
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_EQ(rules->num_rules(), 2u);
  EXPECT_TRUE(rules->AreIncompatible(0, 3));
  EXPECT_TRUE(rules->AreIncompatible(4, 2));

  auto reparsed = CompatibilityRules::Parse(rules->Serialize(vocab), vocab);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_rules(), 2u);
}

TEST(CompatibilityRulesTest, ParseRejectsBadInput) {
  const data::Vocabulary vocab = data::Vocabulary::Synthetic(3, "herb_");
  EXPECT_FALSE(CompatibilityRules::Parse("herb_0\n", vocab).ok());
  EXPECT_FALSE(CompatibilityRules::Parse("herb_0 unknown\n", vocab).ok());
  EXPECT_FALSE(CompatibilityRules::Parse("herb_0 herb_0\n", vocab).ok());
}

TEST(CompatibilityTest, RecommendCompatibleRespectsRules) {
  const auto split = testutil::SmallSplit();
  ModelConfig model_cfg;
  model_cfg.embedding_dim = 16;
  model_cfg.layer_dims = {24};
  model_cfg.thresholds = {2, 5};
  TrainConfig train_cfg;
  train_cfg.learning_rate = 3e-3;
  train_cfg.batch_size = 128;
  train_cfg.epochs = 8;
  SmgcnModel model(model_cfg, train_cfg);
  ASSERT_TRUE(model.Fit(split.train).ok());

  // Forbid the model's own top-2 pair and verify the constrained
  // recommendation avoids it.
  const std::vector<int> symptoms{0, 1, 2};
  auto unconstrained = model.Recommend(symptoms, 10);
  ASSERT_TRUE(unconstrained.ok());
  CompatibilityRules rules;
  ASSERT_TRUE(rules.AddIncompatiblePair(static_cast<int>((*unconstrained)[0]),
                                        static_cast<int>((*unconstrained)[1]))
                  .ok());

  auto constrained = RecommendCompatible(model, symptoms, 10, rules);
  ASSERT_TRUE(constrained.ok());
  EXPECT_EQ(constrained->size(), 10u);
  std::vector<int> as_ints;
  for (std::size_t h : *constrained) as_ints.push_back(static_cast<int>(h));
  EXPECT_FALSE(rules.HasViolation(as_ints));
  // The top herb survives; its incompatible partner does not sit beside it.
  EXPECT_EQ((*constrained)[0], (*unconstrained)[0]);
}

TEST(CompatibilityTest, GeneratorHonoursContraindications) {
  data::TcmGeneratorConfig cfg = testutil::SmallCorpusConfig();
  cfg.num_incompatible_pairs = 30;
  data::TcmGenerator gen(cfg);
  auto corpus = gen.Generate();
  ASSERT_TRUE(corpus.ok());
  const auto& pairs = gen.ground_truth().incompatible_herb_pairs;
  ASSERT_EQ(pairs.size(), 30u);

  CompatibilityRules rules;
  for (const auto& [a, b] : pairs) {
    ASSERT_TRUE(rules.AddIncompatiblePair(a, b).ok());
    // Base herbs are exempt from contraindication sampling.
    EXPECT_GE(static_cast<std::size_t>(a), cfg.num_base_herbs);
    EXPECT_GE(static_cast<std::size_t>(b), cfg.num_base_herbs);
  }
  for (const auto& p : corpus->prescriptions()) {
    EXPECT_FALSE(rules.HasViolation(p.herbs));
  }
}

TEST(CompatibilityTest, GeneratorRejectsTooManyPairs) {
  data::TcmGeneratorConfig cfg = testutil::SmallCorpusConfig();
  cfg.num_incompatible_pairs = cfg.num_herbs * cfg.num_herbs;
  data::TcmGenerator gen(cfg);
  EXPECT_FALSE(gen.Generate().ok());
}

}  // namespace
}  // namespace core
}  // namespace smgcn
