#!/usr/bin/env bash
# Builds everything, runs the test suite, then regenerates every paper
# table/figure, mirroring the project's CI recipe.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done
